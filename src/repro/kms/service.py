"""The key-manager service: tenancy + sharded sealed storage + audit.

:class:`KeyManagerService` is the KMS core that the REST endpoint
(:mod:`repro.kms.api`) fronts.  It wires together:

* a :class:`~repro.kms.tenancy.TenantRegistry` rooted in the
  deployment's :class:`~repro.pki.ca.CertificateAuthority` — tokens are
  derived from enrolled VNF credentials, so the CA remains the single
  trust anchor;
* a :class:`~repro.kms.store.ShardedSecretStore` over enclave-sealed
  shards, each with a CA-issued server identity parked in the
  :class:`~repro.pki.keystore.Keystore`;
* one :class:`~repro.core.events.AuditLog` per tenant — every operation,
  including denials, lands in the *target* namespace's trail, so a
  tenant can audit attempts against its data.

Determinism: the service draws all randomness from its own
``HmacDrbg(seed, personalization=b"repro.kms")`` stream and never
touches the deployment RNG, so attaching a KMS leaves the byte-identical
enrollment transcripts of E11/E12 untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.sanitizer import make_lock
from repro.core.events import AuditEvent, AuditLog
from repro.crypto.keys import generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.crypto.sha256 import sha256
from repro.errors import NamespaceError, TenantAuthError, TenantQuotaExceeded
from repro.kms.shard import SecretShard, shard_identity
from repro.kms.store import KmsCostModel, ShardedSecretStore
from repro.kms.tenancy import TenantQuota, TenantRegistry, valid_name
from repro.net.clock import VirtualClock
from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate
from repro.pki.keystore import Keystore
from repro.pki.name import DistinguishedName


class KeyManagerService:
    """Multi-tenant secrets on top of the deployment's CA.

    Args:
        ca: the trust anchor (tenant authorization + shard identities).
        clock: the deployment's virtual clock.
        seed: DRBG seed for the KMS's own randomness stream.
        shard_count: enclave-sealed shards to create.
        cost_model: simulated operation costs (default
            :class:`~repro.kms.store.KmsCostModel`).
        keystore: where shard identities are parked (private by default).
        seal_workers: process-pool width for the sealing AEAD — the
            wall-clock lever for the E13 seal-throughput axis.  0 (the
            default) seals inline under each shard lock, as before;
            N > 0 shares one :class:`~repro.core.kernels.KernelPool`
            across all shards.  Blob bytes are identical either way.
    """

    def __init__(self, ca: CertificateAuthority, clock: VirtualClock,
                 seed: bytes = b"kms-service", shard_count: int = 4,
                 cost_model: Optional[KmsCostModel] = None,
                 keystore: Optional[Keystore] = None,
                 seal_workers: int = 0) -> None:
        self._ca = ca
        self._clock = clock
        self._rng = HmacDrbg(seed, personalization=b"repro.kms")
        self.keystore = keystore if keystore is not None else Keystore()
        self.registry = TenantRegistry(ca, clock.now, self._rng)
        self._telemetry = None
        # One audit trail per tenant; the dict itself is guarded by a
        # plain lock (trail creation only — AuditLog has its own lock).
        self._trails: Dict[str, AuditLog] = {}
        self._trails_lock = make_lock("kms_ns")
        self.kernel_pool = None
        if seal_workers > 0:
            # Runtime import — repro.core's __init__ imports modules
            # that (indirectly) import this package.
            from repro.core.kernels import KernelPool
            self.kernel_pool = KernelPool(seal_workers, label="kms-seal")

        mrsigner = sha256(b"kms-vendor")
        mrenclave = sha256(b"kms-shard-enclave")
        shards: List[SecretShard] = []
        for index in range(shard_count):
            label, identity = shard_identity(index, mrenclave, mrsigner)
            fuse_key = self._rng.random_bytes(16)
            shard = SecretShard(label, fuse_key, identity, self._rng)
            if self.kernel_pool is not None:
                shard.attach_kernel_pool(self.kernel_pool)
            shards.append(shard)
            self._park_shard_identity(label)
        self.store_backend = ShardedSecretStore(
            shards, clock, cost_model or KmsCostModel())

    def _park_shard_identity(self, label: str) -> None:
        """Give one shard a CA-issued server identity in the keystore."""
        def factory():
            key = generate_keypair(self._rng)
            certificate = self._ca.issue_server_certificate(
                DistinguishedName(f"kms-{label}", "kms"),
                key.public.to_bytes(),
                now=int(self._clock.now()),
            )
            return key, certificate
        self.keystore.get_or_create(f"kms-{label}", factory)

    # ---------------------------------------------------------- telemetry

    def instrument(self, telemetry) -> None:
        """Attach a :class:`repro.obs.Telemetry` (``None`` detaches):
        per-tenant audit events mirror into ``vnf_sgx_audit_events_total``
        and shard occupancy into ``vnf_sgx_kms_secrets``."""
        self._telemetry = telemetry
        observer = None if telemetry is None else telemetry.observe_audit
        with self._trails_lock:
            trails = list(self._trails.values())
        for trail in trails:
            trail.observer = observer
        self._sync_shard_gauge()

    def _sync_shard_gauge(self) -> None:
        if self._telemetry is None:
            return
        for label, count in self.store_backend.secret_counts().items():
            self._telemetry.kms_secrets.labels(shard=label).set(count)

    # -------------------------------------------------------------- audit

    def _trail(self, tenant: str) -> AuditLog:
        with self._trails_lock:
            trail = self._trails.get(tenant)
            if trail is None:
                trail = AuditLog(now=self._clock.now)
                if self._telemetry is not None:
                    trail.observer = self._telemetry.observe_audit
                self._trails[tenant] = trail
            return trail

    def audit_trail(self, tenant: str) -> List[AuditEvent]:
        """Every audited event in ``tenant``'s namespace (including
        denied attempts against it)."""
        return self._trail(tenant).events()

    def _audited(self, tenant: str, kind: str, subject: str,
                 details: str = "") -> None:
        self._trail(tenant).record(kind, subject, details)

    def _authenticate(self, tenant: str, token: Optional[str],
                      op: str, subject: str) -> None:
        """Rate-check and authenticate; denials audit to the target.

        An unknown namespace propagates unrecorded — there is no trail
        to record into, and auditing probes for nonexistent namespaces
        would let an attacker mint unbounded trails.
        """
        try:
            self.registry.authenticate(tenant, token)
            self.registry.check_rate(tenant)
        except TenantAuthError as exc:
            self._audited(tenant, "kms-denied", subject,
                          f"{op}: {type(exc).__name__}")
            raise
        except TenantQuotaExceeded as exc:
            self._audited(tenant, "kms-quota", subject,
                          f"{op}: {type(exc).__name__}")
            raise

    # ------------------------------------------------------------ tenancy

    def create_tenant(self, tenant: str,
                      quota: Optional[TenantQuota] = None) -> None:
        """Create a namespace (see :meth:`TenantRegistry.create_namespace`)."""
        self.registry.create_namespace(tenant, quota)
        self._audited(tenant, "kms-namespace-created", tenant,
                      f"max_secrets={self.registry.quota(tenant).max_secrets}")

    def authorize(self, tenant: str, certificate: Certificate) -> str:
        """Mint a tenant token from an enrolled credential (hex)."""
        token = self.registry.authorize(tenant, certificate)
        self._audited(tenant, "kms-authorized", tenant,
                      f"serial={certificate.serial}")
        return token

    def tenants(self) -> List[str]:
        """All namespace names."""
        return self.registry.tenants()

    def _reserve_audited(self, tenant: str, op: str, subject: str) -> None:
        try:
            self.registry.reserve_secret(tenant)
        except TenantQuotaExceeded as exc:
            self._audited(tenant, "kms-quota", subject,
                          f"{op}: {type(exc).__name__}")
            raise

    def _store_accounted(self, tenant: str, op: str, name: str,
                         value: bytes) -> bool:
        """Write ``value`` with exact count-quota accounting.

        A replacement does not consume a new slot, so the quota is only
        reserved when the key looks new.  The ``created`` flag returned
        by the shard (computed under its lock) reconciles both races:
        a concurrent create turns our reservation into a replacement
        (release it), a concurrent delete turns our replacement into a
        create (inherit the freed slot via ``note_created``).
        """
        replacing = self.store_backend.exists(tenant, name)
        if not replacing:
            self._reserve_audited(tenant, op, name)
        try:
            created = self.store_backend.store(tenant, name, value)
        except Exception:
            if not replacing:
                self.registry.release_secret(tenant)
            raise
        if created and replacing:
            self.registry.note_created(tenant)
        elif not created and not replacing:
            self.registry.release_secret(tenant)
        return created

    # ----------------------------------------------------------- secrets

    def store(self, tenant: str, token: Optional[str], name: str,
              value: bytes) -> None:
        """Store (or replace) secret ``name`` in ``tenant``'s namespace.

        Raises:
            NamespaceError: unknown namespace or invalid secret name.
            TenantAuthError: the token does not authorize ``tenant``.
            TenantQuotaExceeded: rate or count quota exhausted.
        """
        self._authenticate(tenant, token, "store", name)
        if not valid_name(name):
            raise NamespaceError(f"invalid secret name {name!r}")
        created = self._store_accounted(tenant, "store", name, value)
        self._audited(tenant, "kms-store", name,
                      "created" if created else "replaced")
        self._sync_shard_gauge()

    def fetch(self, tenant: str, token: Optional[str], name: str) -> bytes:
        """Fetch secret ``name`` from ``tenant``'s namespace."""
        self._authenticate(tenant, token, "fetch", name)
        value = self.store_backend.fetch(tenant, name)
        self._audited(tenant, "kms-fetch", name)
        return value

    def delete(self, tenant: str, token: Optional[str], name: str) -> None:
        """Delete secret ``name`` from ``tenant``'s namespace."""
        self._authenticate(tenant, token, "delete", name)
        self.store_backend.delete(tenant, name)
        self.registry.release_secret(tenant)
        self._audited(tenant, "kms-delete", name)
        self._sync_shard_gauge()

    def names(self, tenant: str, token: Optional[str]) -> List[str]:
        """List secret names in ``tenant``'s namespace."""
        self._authenticate(tenant, token, "list", "*")
        listed = self.store_backend.names(tenant)
        self._audited(tenant, "kms-list", "*", f"count={len(listed)}")
        return listed

    def generate(self, tenant: str, token: Optional[str], name: str,
                 length: int = 32) -> None:
        """Generate ``length`` deterministic random bytes and store them
        as secret ``name`` (the value never crosses the API)."""
        self._authenticate(tenant, token, "generate", name)
        if not valid_name(name):
            raise NamespaceError(f"invalid secret name {name!r}")
        value = self.registry.generate_secret(tenant, length)
        self._store_accounted(tenant, "generate", name, value)
        self._audited(tenant, "kms-generate", name, f"length={length}")
        self._sync_shard_gauge()

    # --------------------------------------------------------- accounting

    def quiesce(self) -> float:
        """Drain the shard pipelines (advance the clock past all
        outstanding enclave work); returns the new simulated ``now``."""
        return self.store_backend.quiesce()

    def shard_count(self) -> int:
        """Number of shards behind the store."""
        return len(self.store_backend.shards())

    def shutdown_seal_workers(self) -> None:
        """Tear down the seal kernel pool, if one was configured
        (idempotent; shards fall back to inline sealing)."""
        if self.kernel_pool is not None:
            for shard in self.store_backend.shards():
                shard.attach_kernel_pool(None)
            self.kernel_pool.shutdown()
            self.kernel_pool = None
