"""``repro.kms`` — a multi-tenant, sharded key-manager service.

The paper's Verification Manager provisions credentials to two VNFs; an
operator's fleet needs a *key-management service*: per-tenant namespaces
with quotas, secrets at rest inside enclave-sealed storage, and an
audited REST front door.  This package layers exactly that on the
existing pieces — the :class:`~repro.pki.ca.CertificateAuthority` issues
shard identities and anchors tenant authorization, secrets are sealed
with :mod:`repro.sgx.sealing`, the API is served on the simulated
network through :mod:`repro.net.rest`, and every request is metered by
:mod:`repro.obs`.  See ``docs/KMS.md`` for the design.
"""

from repro.kms.api import KmsClient, KmsEndpoint
from repro.kms.hashring import HashRing
from repro.kms.service import KeyManagerService
from repro.kms.shard import SecretShard
from repro.kms.store import KmsCostModel, ShardedSecretStore
from repro.kms.tenancy import TenantQuota, TenantRegistry

__all__ = [
    "HashRing",
    "KeyManagerService",
    "KmsClient",
    "KmsCostModel",
    "KmsEndpoint",
    "SecretShard",
    "ShardedSecretStore",
    "TenantQuota",
    "TenantRegistry",
]
