"""The KMS REST front door on the simulated network.

:class:`KmsEndpoint` serves the key-manager API the way the controller's
northbound serves flows: a listener on the simulated fabric feeding an
HTTP parser, with the network's :class:`~repro.net.faults.FaultPlan`
consulted before dispatch (so injected brown-outs surface as 5xx at the
REST surface without touching the service).  Routes::

    GET    /kms/v1/<tenant>/secrets            list secret names
    POST   /kms/v1/<tenant>/secrets/<name>     store (body: {"value": hex})
    GET    /kms/v1/<tenant>/secrets/<name>     fetch
    DELETE /kms/v1/<tenant>/secrets/<name>     delete
    POST   /kms/v1/<tenant>/generate/<name>    generate (body: {"length": n})

Authorization rides in ``authorization: Bearer <hex token>``; the typed
service errors map onto HTTP statuses (401 missing token, 403 denied,
404 unknown namespace/secret, 429 over quota).  Every request lands in
``vnf_sgx_kms_requests_total{op,status}`` and a per-op latency
histogram when telemetry is attached.

:class:`KmsClient` is the tenant-side counterpart: one persistent
channel (reconnecting transparently if it drops), raising the same
typed errors the service does — plus :class:`~repro.errors.
KmsUnavailable` for injected/transient 5xx, which callers may retry.
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from repro.errors import (
    ChannelClosed,
    KmsError,
    KmsUnavailable,
    NamespaceError,
    RestError,
    SecretNotFound,
    TenantAuthError,
    TenantQuotaExceeded,
)
from repro.kms.service import KeyManagerService
from repro.net.address import Address
from repro.net.rest import HttpParser, HttpRequest, HttpResponse
from repro.net.simnet import Network

API_PREFIX = "/kms/v1"


def _json_response(status: int, payload: dict) -> HttpResponse:
    return HttpResponse(
        status,
        headers={"content-type": "application/json"},
        body=json.dumps(payload, sort_keys=True).encode("utf-8"),
    )


def _error_status(exc: KmsError) -> int:
    if isinstance(exc, TenantAuthError):
        return 403
    if isinstance(exc, TenantQuotaExceeded):
        return 429
    if isinstance(exc, (NamespaceError, SecretNotFound)):
        return 404
    return 400


class KmsEndpoint:
    """One KMS REST listener on the simulated network.

    Args:
        service: the key-manager core to front.
        network: the simulated fabric.
        address: where to listen (e.g. ``Address("vm.example.org", 7100)``).
    """

    def __init__(self, service: KeyManagerService, network: Network,
                 address: Address) -> None:
        self.service = service
        self.address = address
        self._network = network
        self._telemetry = None
        self.requests_served = 0
        network.listen(address, self._accept)

    def close(self) -> None:
        """Stop listening."""
        self._network.stop_listening(self.address)

    def instrument(self, telemetry) -> None:
        """Attach a :class:`repro.obs.Telemetry` for request counters,
        latency histograms, and spans (``None`` detaches); also wires the
        service's audit/gauge mirroring."""
        self._telemetry = telemetry
        self.service.instrument(telemetry)

    # ------------------------------------------------------------- serving

    def _accept(self, channel) -> None:
        parser = HttpParser(is_server_side=True)

        def on_data(ch) -> None:
            for request in parser.feed(ch.recv_available()):
                ch.send(self._serve(request).encode())

        channel.on_receive(on_data)

    def _injected_fault(self) -> Optional[HttpResponse]:
        """An injected ``http_error`` response for this request, if the
        network's fault plan schedules one (KMS brown-out)."""
        faults = self._network.faults
        if faults is None:
            return None
        status = faults.next_http_error(self.address)
        if status is None:
            return None
        return HttpResponse(status, headers={"retry-after": "1"},
                            body=b"injected fault: key manager unavailable")

    def _serve(self, request: HttpRequest) -> HttpResponse:
        self.requests_served += 1
        op, respond = "unroutable", None
        injected = self._injected_fault()
        if injected is not None:
            response = injected
        else:
            op, respond = self._route(request)
            if self._telemetry is not None:
                child = self._telemetry.kms_request_seconds.labels(op=op)
                with self._telemetry.span(f"kms.{op}", path=request.path):
                    with self._telemetry.time(child):
                        response = respond()
            else:
                response = respond()
        if self._telemetry is not None:
            self._telemetry.kms_requests.labels(
                op=op, status=str(response.status)).inc()
        return response

    # ------------------------------------------------------------- routing

    def _route(self, request: HttpRequest):
        """Resolve ``request`` to ``(op label, thunk)``.

        Paths are parametrized (tenant and secret names are path
        segments), so routing is by hand rather than through
        :class:`~repro.net.rest.RestServer`'s exact-match table.
        """
        segments = request.path.strip("/").split("/")
        method = request.method.upper()
        if len(segments) < 3 or "/" + "/".join(segments[:2]) != API_PREFIX:
            return "unroutable", lambda: HttpResponse(404, body=b"not found")
        tenant = segments[2]
        tail = segments[3:]
        token = self._bearer_token(request)

        if tail == ["secrets"]:
            if method == "GET":
                return "list", lambda: self._do_list(tenant, token)
            return "list", lambda: HttpResponse(
                405, body=b"method not allowed")
        if len(tail) == 2 and tail[0] == "secrets":
            name = tail[1]
            if method == "POST":
                return "store", lambda: self._do_store(
                    tenant, token, name, request.body)
            if method == "GET":
                return "fetch", lambda: self._do_fetch(tenant, token, name)
            if method == "DELETE":
                return "delete", lambda: self._do_delete(tenant, token, name)
            return "secrets", lambda: HttpResponse(
                405, body=b"method not allowed")
        if len(tail) == 2 and tail[0] == "generate":
            if method == "POST":
                return "generate", lambda: self._do_generate(
                    tenant, token, tail[1], request.body)
            return "generate", lambda: HttpResponse(
                405, body=b"method not allowed")
        return "unroutable", lambda: HttpResponse(404, body=b"not found")

    @staticmethod
    def _bearer_token(request: HttpRequest) -> Optional[str]:
        header = request.headers.get("authorization", "")
        scheme, _, credential = header.partition(" ")
        if scheme.lower() != "bearer" or not credential:
            return None
        return credential.strip()

    # ------------------------------------------------------------ handlers

    def _do_list(self, tenant: str, token: Optional[str]) -> HttpResponse:
        if token is None:
            return _json_response(401, {"error": "missing bearer token"})
        try:
            names = self.service.names(tenant, token)
        except KmsError as exc:
            return _json_response(_error_status(exc), {"error": str(exc)})
        return _json_response(200, {"secrets": names})

    def _do_store(self, tenant: str, token: Optional[str], name: str,
                  body: bytes) -> HttpResponse:
        if token is None:
            return _json_response(401, {"error": "missing bearer token"})
        try:
            payload = json.loads(body.decode("utf-8"))
            value = bytes.fromhex(payload["value"])
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            return _json_response(
                400, {"error": f"malformed store body: {exc}"})
        try:
            self.service.store(tenant, token, name, value)
        except KmsError as exc:
            return _json_response(_error_status(exc), {"error": str(exc)})
        return _json_response(201, {"stored": name})

    def _do_fetch(self, tenant: str, token: Optional[str],
                  name: str) -> HttpResponse:
        if token is None:
            return _json_response(401, {"error": "missing bearer token"})
        try:
            value = self.service.fetch(tenant, token, name)
        except KmsError as exc:
            return _json_response(_error_status(exc), {"error": str(exc)})
        return _json_response(200, {"name": name, "value": value.hex()})

    def _do_delete(self, tenant: str, token: Optional[str],
                   name: str) -> HttpResponse:
        if token is None:
            return _json_response(401, {"error": "missing bearer token"})
        try:
            self.service.delete(tenant, token, name)
        except KmsError as exc:
            return _json_response(_error_status(exc), {"error": str(exc)})
        return _json_response(200, {"deleted": name})

    def _do_generate(self, tenant: str, token: Optional[str], name: str,
                     body: bytes) -> HttpResponse:
        if token is None:
            return _json_response(401, {"error": "missing bearer token"})
        length = 32
        if body:
            try:
                payload = json.loads(body.decode("utf-8"))
                length = int(payload.get("length", 32))
            except (ValueError, UnicodeDecodeError) as exc:
                return _json_response(
                    400, {"error": f"malformed generate body: {exc}"})
        try:
            self.service.generate(tenant, token, name, length)
        except KmsError as exc:
            return _json_response(_error_status(exc), {"error": str(exc)})
        return _json_response(201, {"generated": name, "length": length})


class KmsClient:
    """Tenant-side KMS client over one persistent channel.

    Args:
        network: the simulated fabric.
        address: the KMS endpoint's address.
        tenant: namespace to operate in.
        token: hex bearer token from :meth:`KeyManagerService.authorize`.
        source_host: host the connection originates from (link profile).
    """

    def __init__(self, network: Network, address: Address, tenant: str,
                 token: str, source_host: str) -> None:
        self._network = network
        self._address = address
        self.tenant = tenant
        self._token = token
        self._source_host = source_host
        self._channel = None
        self._parser: Optional[HttpParser] = None

    def close(self) -> None:
        """Drop the persistent channel."""
        if self._channel is not None:
            self._channel.close()
            self._channel = None

    # ------------------------------------------------------------ transport

    def _request(self, method: str, path: str,
                 body: bytes = b"") -> HttpResponse:
        request = HttpRequest(method, path, headers={
            "authorization": f"Bearer {self._token}",
        }, body=body)
        try:
            return self._send(request)
        except ChannelClosed:
            # Persistent connection dropped (fault injection or server
            # restart): reconnect once and replay the request.
            self.close()
            return self._send(request)

    def _send(self, request: HttpRequest) -> HttpResponse:
        if self._channel is None:
            self._channel = self._network.connect(self._source_host,
                                                  self._address)
            self._parser = HttpParser(is_server_side=False)
        self._channel.send(request.encode())
        responses = self._parser.feed(self._channel.recv_available())
        if not responses:
            raise RestError(f"no response from {self._address}")
        return responses[0]

    def _checked(self, response: HttpResponse, expect: int) -> dict:
        if response.status == expect:
            if not response.body:
                return {}
            return json.loads(response.body.decode("utf-8"))
        detail = response.body.decode("utf-8", errors="replace")
        if response.status in (500, 502, 503, 504):
            raise KmsUnavailable(f"{response.status}: {detail}")
        if response.status == 429:
            raise TenantQuotaExceeded(detail)
        if response.status in (401, 403):
            raise TenantAuthError(detail)
        if response.status == 404:
            if "namespace" in detail:
                raise NamespaceError(detail)
            raise SecretNotFound(detail)
        raise KmsError(f"{response.status}: {detail}")

    # ----------------------------------------------------------- operations

    def _secret_path(self, name: str) -> str:
        return f"{API_PREFIX}/{self.tenant}/secrets/{name}"

    def store(self, name: str, value: bytes) -> None:
        """Store (or replace) one secret."""
        body = json.dumps({"value": value.hex()}).encode("utf-8")
        self._checked(
            self._request("POST", self._secret_path(name), body), 201)

    def fetch(self, name: str) -> bytes:
        """Fetch one secret's value."""
        payload = self._checked(
            self._request("GET", self._secret_path(name)), 200)
        return bytes.fromhex(payload["value"])

    def delete(self, name: str) -> None:
        """Delete one secret."""
        self._checked(
            self._request("DELETE", self._secret_path(name)), 200)

    def names(self) -> List[str]:
        """List the namespace's secret names."""
        payload = self._checked(
            self._request("GET", f"{API_PREFIX}/{self.tenant}/secrets"), 200)
        return list(payload["secrets"])

    def generate(self, name: str, length: int = 32) -> None:
        """Server-side generate-and-store (the value never crosses the
        API; read it back with :meth:`fetch` if needed)."""
        body = json.dumps({"length": length}).encode("utf-8")
        self._checked(
            self._request("POST",
                          f"{API_PREFIX}/{self.tenant}/generate/{name}",
                          body), 201)

    def fetch_raw(self, method: str, path: str,
                  body: bytes = b"") -> Tuple[int, bytes]:
        """Escape hatch for tests: one request, raw ``(status, body)``."""
        response = self._request(method, path, body)
        return response.status, response.body
