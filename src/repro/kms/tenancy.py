"""Tenancy: namespaces, quotas, and credential-derived authorization.

A *namespace* is one tenant's slice of the KMS.  Authorization is rooted
in the paper's credential machinery rather than passwords: a tenant
registers the certificate its enrolled VNF received from the
Verification Manager's CA, and the registry mints a bearer token bound
to that certificate — ``HMAC(token_key, tenant || fingerprint)``.  The
CA stays the single source of trust: a certificate that the CA never
issued, or has since revoked, authorizes nothing.

Quotas are enforced here too:

* **count** — ``max_secrets`` live secrets per namespace, accounted with
  reserve/release so concurrent stores cannot overshoot;
* **rate** — a token bucket refilled on *simulated* time
  (:class:`~repro.net.clock.VirtualClock`), so a burst above
  ``ops_per_second`` is rejected deterministically, independent of wall
  clock or host speed.

The registry lock is a non-reentrant leaf in the documented order
(``docs/CONCURRENCY.md``): time is read *before* taking it, and nothing
locked is called while holding it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.sanitizer import make_lock, shared_state
from repro.crypto.constant_time import ct_bytes_eq
from repro.crypto.hmac import hmac_sha256
from repro.crypto.rng import HmacDrbg
from repro.errors import NamespaceError, TenantAuthError, TenantQuotaExceeded
from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate

#: Characters allowed in tenant and secret names (no ``/``: the sharded
#: store namespaces its keys as ``tenant/name``).
_NAME_ALPHABET = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def valid_name(name: str) -> bool:
    """True for a usable tenant or secret name."""
    return bool(name) and len(name) <= 128 and set(name) <= _NAME_ALPHABET


@dataclass(frozen=True)
class TenantQuota:
    """Per-namespace limits.

    Attributes:
        max_secrets: live secrets the namespace may hold.
        ops_per_second: sustained request rate (``None`` = unlimited).
        burst: token-bucket depth — requests admitted above the
            sustained rate before throttling starts.
    """

    max_secrets: int = 128
    ops_per_second: Optional[float] = None
    burst: int = 8


class _Namespace:
    """Mutable per-tenant state (guarded by the registry lock)."""

    __slots__ = ("name", "quota", "tokens", "secret_count",
                 "bucket_level", "bucket_refilled_at", "generator")

    def __init__(self, name: str, quota: TenantQuota,
                 generator: HmacDrbg) -> None:
        self.name = name
        self.quota = quota
        self.tokens: List[bytes] = []
        self.secret_count = 0
        self.bucket_level = float(quota.burst)
        self.bucket_refilled_at = 0.0
        self.generator = generator


@shared_state("_namespaces")
class TenantRegistry:
    """Namespace catalogue + quota accounting + token authorization.

    Args:
        ca: the authority whose certificates anchor tenant authorization.
        now: simulated-time source (``clock.now``).
        rng: seed source for the token key and per-tenant generators.
    """

    def __init__(self, ca: CertificateAuthority,
                 now: Callable[[], float], rng: HmacDrbg) -> None:
        self._ca = ca
        self._now = now
        self._token_key = rng.random_bytes(32)
        self._generator_root = rng.random_bytes(32)
        self._namespaces: Dict[str, _Namespace] = {}
        self._lock = make_lock("kms_ns")

    # ---------------------------------------------------------- namespaces

    def create_namespace(self, tenant: str,
                         quota: Optional[TenantQuota] = None) -> None:
        """Create the namespace for ``tenant``.

        Raises:
            NamespaceError: invalid name or namespace collision.
        """
        if not valid_name(tenant):
            raise NamespaceError(f"invalid tenant name {tenant!r}")
        quota = quota or TenantQuota()
        # Deterministic per-tenant generator: keyed by name, not by
        # creation order, so equal seeds generate equal secrets.
        generator = HmacDrbg(self._generator_root,
                             personalization=b"kms-generate:" + tenant.encode())
        namespace = _Namespace(tenant, quota, generator)
        now = self._now()
        namespace.bucket_refilled_at = now
        with self._lock:
            if tenant in self._namespaces:
                raise NamespaceError(f"namespace {tenant!r} already exists")
            self._namespaces[tenant] = namespace

    def tenants(self) -> List[str]:
        """All namespace names."""
        with self._lock:
            return list(self._namespaces.keys())

    def quota(self, tenant: str) -> TenantQuota:
        """The quota configured for ``tenant``."""
        return self._namespace(tenant).quota

    def _namespace(self, tenant: str) -> _Namespace:
        with self._lock:
            namespace = self._namespaces.get(tenant)
        if namespace is None:
            raise NamespaceError(f"unknown namespace {tenant!r}")
        return namespace

    # ------------------------------------------------------- authorization

    def _derive_token(self, tenant: str, certificate: Certificate) -> bytes:
        return hmac_sha256(
            self._token_key,
            b"kms-token|" + tenant.encode() + b"|" + certificate.fingerprint(),
        )

    def authorize(self, tenant: str, certificate: Certificate) -> str:
        """Mint a bearer token for ``tenant`` from an enrolled credential.

        The certificate must have been issued by the registry's CA and
        must not be revoked; the token is bound to the certificate's
        fingerprint and stays valid until the namespace drops it.

        Returns:
            The token, hex-encoded for the ``authorization`` header.

        Raises:
            NamespaceError: unknown namespace.
            TenantAuthError: the certificate does not authorize anything.
        """
        namespace = self._namespace(tenant)
        if not self._ca.is_issued(certificate.serial):
            raise TenantAuthError(
                f"certificate serial {certificate.serial} was not issued "
                "by the KMS authority"
            )
        issued = self._ca.issued_certificate(certificate.serial)
        if issued.fingerprint() != certificate.fingerprint():
            raise TenantAuthError(
                f"certificate serial {certificate.serial} does not match "
                "the issued certificate"
            )
        crl = self._ca.current_crl(int(self._now()))
        if crl.is_revoked(certificate.serial):
            raise TenantAuthError(
                f"certificate serial {certificate.serial} is revoked"
            )
        token = self._derive_token(tenant, certificate)
        with self._lock:
            if token not in namespace.tokens:
                namespace.tokens.append(token)
        return token.hex()

    def authenticate(self, tenant: str, token_hex: Optional[str]) -> None:
        """Check a presented token against ``tenant``'s namespace.

        Raises:
            NamespaceError: unknown namespace.
            TenantAuthError: missing or unrecognized token — including a
                token minted for a *different* namespace, which is how
                cross-tenant access is always denied.
        """
        namespace = self._namespace(tenant)
        if not token_hex:
            raise TenantAuthError("missing authorization token")
        try:
            presented = bytes.fromhex(token_hex)
        except ValueError as exc:
            raise TenantAuthError("malformed authorization token") from exc
        with self._lock:
            expected = list(namespace.tokens)
        if not any(ct_bytes_eq(presented, token) for token in expected):
            raise TenantAuthError(
                f"token does not authorize namespace {tenant!r}"
            )

    # -------------------------------------------------------------- quotas

    def check_rate(self, tenant: str) -> None:
        """Admit one request under the namespace's rate quota.

        Raises:
            TenantQuotaExceeded: the token bucket is empty.
        """
        namespace = self._namespace(tenant)
        rate = namespace.quota.ops_per_second
        if rate is None:
            return
        now = self._now()
        with self._lock:
            elapsed = now - namespace.bucket_refilled_at
            if elapsed > 0:
                namespace.bucket_level = min(
                    float(namespace.quota.burst),
                    namespace.bucket_level + elapsed * rate,
                )
                namespace.bucket_refilled_at = now
            if namespace.bucket_level < 1.0:
                raise TenantQuotaExceeded(
                    f"namespace {tenant!r} exceeded {rate}/s "
                    f"(burst {namespace.quota.burst})"
                )
            namespace.bucket_level -= 1.0

    def reserve_secret(self, tenant: str) -> None:
        """Reserve one slot against the count quota (release on failure
        or replacement — the reserve/release pair keeps concurrent
        stores from overshooting ``max_secrets``).

        Raises:
            TenantQuotaExceeded: the namespace is full.
        """
        namespace = self._namespace(tenant)
        with self._lock:
            if namespace.secret_count >= namespace.quota.max_secrets:
                raise TenantQuotaExceeded(
                    f"namespace {tenant!r} holds "
                    f"{namespace.secret_count}/{namespace.quota.max_secrets} "
                    "secrets"
                )
            namespace.secret_count += 1

    def note_created(self, tenant: str) -> None:
        """Account one slot without a quota check.

        Used to reconcile a store that was expected to be a replacement
        but raced with a concurrent delete: the delete freed the slot
        this write now occupies, so the count stays exact even if it
        momentarily reads at the quota ceiling.
        """
        namespace = self._namespace(tenant)
        with self._lock:
            namespace.secret_count += 1

    def release_secret(self, tenant: str) -> None:
        """Return one reserved/held slot to the count quota."""
        namespace = self._namespace(tenant)
        with self._lock:
            if namespace.secret_count > 0:
                namespace.secret_count -= 1

    def secret_count(self, tenant: str) -> int:
        """Live secrets currently accounted to ``tenant``."""
        namespace = self._namespace(tenant)
        with self._lock:
            return namespace.secret_count

    # ----------------------------------------------------------- generation

    def generate_secret(self, tenant: str, length: int) -> bytes:
        """Draw ``length`` bytes from the tenant's deterministic
        generator (advances the stream — repeated calls differ, equal
        seeds replay equally)."""
        if not 1 <= length <= 1024:
            raise NamespaceError(f"generate length {length} out of range")
        namespace = self._namespace(tenant)
        with self._lock:
            return namespace.generator.random_bytes(length)
