"""One enclave-sealed KMS shard.

A shard is modelled as an enclave workload (this module sits inside the
analyzer's enclave boundary, like the credential enclave): it holds its
platform fuse key and seals every tenant secret with
:func:`repro.sgx.sealing.seal` before the bytes touch the host-visible
dictionary.  At rest a shard therefore stores only
:class:`~repro.sgx.sealing.SealedBlob` ciphertext; plaintext exists
exactly for the duration of a ``store``/``fetch`` call, inside the
shard.

Each shard also models its own compute timeline: shards run on separate
enclave cores, so their seal/unseal work overlaps.  An operation started
at simulated time ``now`` begins when the shard is free
(``max(now, busy_until)``) and occupies it for the operation's cost; the
front end charges only its serialized dispatch cost and later drains the
pipeline (``ShardedSecretStore.quiesce``) by advancing the clock to the
latest shard completion.  That is what the E13 shard-scaling gate
measures: N shards divide the sealing work N ways.

Concurrency: all mutation runs under the shard's non-reentrant lock — a
leaf in the documented order (``docs/CONCURRENCY.md``); shard code never
calls out to another locked component while holding it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.sanitizer import make_lock, shared_state
from repro.crypto.rng import HmacDrbg
from repro.errors import SecretNotFound
from repro.sgx.enclave import EnclaveIdentity
from repro.sgx.sealing import POLICY_MRENCLAVE, SealedBlob, seal, unseal


@shared_state("_blobs", "_busy_until")
class SecretShard:
    """Sealed storage for one slice of the KMS keyspace.

    Args:
        label: ring identifier (``"shard-0"``, ...).
        fuse_key: the shard platform's sealing fuse key.
        identity: the shard enclave's identity (seal-key derivation).
        rng: nonce/key-id source for sealing.
    """

    def __init__(self, label: str, fuse_key: bytes,
                 identity: EnclaveIdentity, rng: HmacDrbg) -> None:
        self.label = label
        self.identity = identity
        self._fuse_key = fuse_key
        self._rng = rng
        self._blobs: Dict[str, SealedBlob] = {}
        self._busy_until = 0.0
        self._lock = make_lock("kms_shard")
        # Optional seal-work offload (duck-typed KernelPool; None = the
        # AEAD runs inline under the shard lock, as before).
        self._kernel_pool = None

    def attach_kernel_pool(self, pool) -> None:
        """Run the sealing AEAD in a kernel-pool worker (``None``
        detaches).  Randomness (key id, nonce) is still drawn under the
        shard lock in DRBG order, so pooled blobs are byte-identical;
        only the cipher work leaves the lock."""
        self._kernel_pool = pool

    # ----------------------------------------------------------- pipeline

    def _occupy(self, now: float, cost: float) -> float:
        """Reserve the shard core for ``cost`` seconds (lock held)."""
        start = now if now > self._busy_until else self._busy_until
        self._busy_until = start + cost
        return self._busy_until

    def busy_until(self) -> float:
        """Simulated time at which the shard's pipeline drains."""
        with self._lock:
            return self._busy_until

    # ------------------------------------------------------------ storage

    def store(self, key: str, tenant_secret: bytes, now: float,
              cost: float) -> bool:
        """Seal and store ``tenant_secret`` under ``key``.

        Returns ``True`` when the key is new (``False`` on replacement),
        so the caller can keep count-quota accounting exact.
        """
        pool = self._kernel_pool
        if pool is None:
            with self._lock:
                blob = seal(self._fuse_key, self.identity, tenant_secret,
                            rng=self._rng)
                created = key not in self._blobs
                self._blobs[key] = blob
                self._occupy(now, cost)
                return created
        # Pooled seal: draw randomness under the lock (DRBG order is the
        # byte-identity anchor), run the AEAD in a worker with no locks
        # held, then re-enter the lock to publish the result.
        with self._lock:
            key_id = self._rng.random_bytes(16)
            nonce = self._rng.random_bytes(12)
        blob_bytes = pool.seal_blob(
            self._fuse_key, self.identity.mrenclave, self.identity.mrsigner,
            self.identity.isv_prod_id, self.identity.isv_svn,
            bytes(tenant_secret), POLICY_MRENCLAVE, key_id, nonce,
        )
        blob = SealedBlob.from_bytes(blob_bytes)
        with self._lock:
            created = key not in self._blobs
            self._blobs[key] = blob
            self._occupy(now, cost)
            return created

    def fetch(self, key: str, now: float, cost: float) -> bytes:
        """Unseal and return the secret stored under ``key``.

        Raises:
            SecretNotFound: nothing stored under ``key``.
        """
        with self._lock:
            blob = self._blobs.get(key)
            if blob is None:
                raise SecretNotFound(f"no secret under {key!r}")
            tenant_secret = unseal(self._fuse_key, self.identity, blob)
            self._occupy(now, cost)
            return tenant_secret

    def delete(self, key: str, now: float, cost: float) -> None:
        """Remove the secret stored under ``key``.

        Raises:
            SecretNotFound: nothing stored under ``key``.
        """
        with self._lock:
            if key not in self._blobs:
                raise SecretNotFound(f"no secret under {key!r}")
            del self._blobs[key]
            self._occupy(now, cost)

    # ------------------------------------------------------------ queries

    def has(self, key: str) -> bool:
        """True if a secret is stored under ``key`` (metadata probe —
        no unseal, no pipeline time)."""
        with self._lock:
            return key in self._blobs

    def keys(self, prefix: Optional[str] = None) -> List[str]:
        """Stored keys, optionally filtered to a ``prefix``."""
        with self._lock:
            snapshot = list(self._blobs.keys())
        if prefix is None:
            return snapshot
        return [k for k in snapshot if k.startswith(prefix)]

    def sealed_blob(self, key: str) -> SealedBlob:
        """The at-rest form of one entry (tests assert it is ciphertext).

        Raises:
            SecretNotFound: nothing stored under ``key``.
        """
        with self._lock:
            blob = self._blobs.get(key)
        if blob is None:
            raise SecretNotFound(f"no secret under {key!r}")
        return blob

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs)

    def __repr__(self) -> str:
        return f"<SecretShard {self.label} secrets={len(self)}>"


def shard_identity(index: int, mrenclave: bytes, mrsigner: bytes,
                   isv_svn: int = 1) -> Tuple[str, EnclaveIdentity]:
    """Label + enclave identity for shard ``index`` (one product line,
    one measurement per shard instance)."""
    return f"shard-{index}", EnclaveIdentity(
        mrenclave=mrenclave, mrsigner=mrsigner,
        isv_prod_id=300 + index, isv_svn=isv_svn,
    )
