"""Command-line interface: drive a deployment from the terminal.

Examples::

    python -m repro demo --vnfs 2 --tpm
    python -m repro attest --tamper /usr/bin/dockerd
    python -m repro enroll --vnfs 3 --csr
    python -m repro fleet --vnfs 16 --workers 8
    python -m repro ratls --vnfs 4 --hosts 2
    python -m repro sdn --replicas 3 --endpoints 64
    python -m repro kms --tenants 4 --shards 4
    python -m repro metrics --vnfs 2
    python -m repro lint --strict
    python -m repro experiments
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import Deployment
from repro.errors import ReproError

EXPERIMENTS = [
    ("E1", "Figure 1 workflow step breakdown", "benchmarks/test_e1_workflow.py"),
    ("E2", "attestation latency vs. IML size", "benchmarks/test_e2_attestation.py"),
    ("E3", "fleet enrolment: keystore vs. trusted CA", "benchmarks/test_e3_enrollment.py"),
    ("E4", "TLS inside vs. outside the enclave", "benchmarks/test_e4_enclave_tls.py"),
    ("E5", "northbound security modes", "benchmarks/test_e5_rest_modes.py"),
    ("E6", "IAS verification vs. SigRL size", "benchmarks/test_e6_ias_revocation.py"),
    ("E7", "TPM-rooted vs. plain-IMA tamper detection", "benchmarks/test_e7_tpm_root_of_trust.py"),
    ("E8", "sealed credential persistence", "benchmarks/test_e8_sealing.py"),
    ("E9", "provisioning variants: VM keys vs. in-enclave CSR",
     "benchmarks/test_e9_provisioning_variants.py"),
    ("E10", "full vs. resumed TLS handshakes",
     "benchmarks/test_e10_session_resumption.py"),
    ("E11", "crypto hot paths: fast-path EC engine vs. reference ladder",
     "benchmarks/test_e11_crypto_hotpath.py"),
    ("E12", "fleet enrolment: serial loop vs. worker-pool scheduler",
     "benchmarks/test_e12_fleet.py"),
    ("E13", "key manager: throughput vs. tenants and shard count",
     "benchmarks/test_e13_kms.py"),
    ("E14", "RA-TLS attested channels vs. out-of-band enrolment",
     "benchmarks/test_e14_ratls.py"),
    ("E15", "trusted fabric: failover convergence and revocation fan-out",
     "benchmarks/test_e15_fabric.py"),
]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Safeguarding VNF Credentials with "
                     "Intel SGX' (SIGCOMM'17)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the full Figure 1 workflow")
    _common_flags(demo)

    attest = sub.add_parser("attest",
                            help="attest the container host and print the "
                                 "appraisal verdict")
    _common_flags(attest)
    attest.add_argument("--tamper", metavar="PATH",
                        help="tamper with a host file before attestation")
    attest.add_argument("--hide", action="store_true",
                        help="also sanitize the measurement log "
                             "(the paper's §4 adversary)")

    enroll = sub.add_parser("enroll",
                            help="enrol every VNF and exercise the "
                                 "controller")
    _common_flags(enroll)
    enroll.add_argument("--csr", action="store_true",
                        help="use the CSR variant (keys generated inside "
                             "the enclave)")

    fleet = sub.add_parser(
        "fleet",
        help="enrol every VNF through the worker-pool scheduler "
             "(single-flight host attestation, pooled IAS connection)")
    _common_flags(fleet)
    fleet.add_argument("--workers", type=int, default=4,
                       help="worker-pool width (default 4)")
    fleet.add_argument("--no-pooled-ias", action="store_true",
                       help="dial IAS per verification instead of reusing "
                            "one connection")
    fleet.add_argument("--processes", type=int, default=0,
                       help="kernel-pool worker processes for quote "
                            "verification and certificate signing "
                            "(default 0: in-process)")

    metrics = sub.add_parser(
        "metrics",
        help="run the workflow with telemetry enabled and dump the "
             "/metrics scrape text")
    _common_flags(metrics)
    metrics.add_argument("--traces", action="store_true",
                         help="print the trace JSON instead of the "
                              "Prometheus scrape text")

    ratls = sub.add_parser(
        "ratls",
        help="enrol every VNF over RA-TLS attested channels and compare "
             "round trips against the out-of-band protocol")
    _common_flags(ratls)
    ratls.add_argument("--reconnects", type=int, default=5,
                       help="attested-resumption reconnects per VNF "
                            "(default 5)")

    sdn = sub.add_parser(
        "sdn",
        help="build the replicated trusted fabric, crash the leader, and "
             "report failover convergence + revocation fan-out")
    _common_flags(sdn)
    sdn.add_argument("--replicas", type=int, default=3,
                     help="controller replicas (default 3)")
    sdn.add_argument("--endpoints", type=int, default=64,
                     help="endpoint switches homed across the fabric "
                          "(default 64)")

    kms = sub.add_parser(
        "kms",
        help="attach the multi-tenant key manager, enrol a credential per "
             "tenant, and exercise the sharded secret store")
    _common_flags(kms)
    kms.add_argument("--tenants", type=int, default=2,
                     help="tenant namespaces to create (default 2)")
    kms.add_argument("--shards", type=int, default=4,
                     help="enclave-sealed shards (default 4)")
    kms.add_argument("--secrets", type=int, default=8,
                     help="secrets stored per tenant (default 8)")
    kms.add_argument("--seal-workers", type=int, default=0,
                     help="kernel-pool worker processes for the sealing "
                          "AEAD (default 0: seal inline)")

    lint = sub.add_parser(
        "lint",
        help="run the domain-invariant static analyzers (secret-flow, "
             "lock-order, constant-time, hygiene; see docs/ANALYSIS.md)")
    from repro.analysis.runner import add_lint_arguments
    add_lint_arguments(lint)

    sub.add_parser("experiments",
                   help="list the experiment index (see EXPERIMENTS.md)")
    return parser


def _common_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--vnfs", type=int, default=2,
                        help="number of VNFs (default 2, as in Figure 1)")
    parser.add_argument("--hosts", type=int, default=1,
                        help="number of container hosts (default 1)")
    parser.add_argument("--tpm", action="store_true",
                        help="enable the TPM-rooted IMA configuration")
    parser.add_argument("--seed", default="cli-deployment",
                        help="determinism seed")


def _build_deployment(args) -> Deployment:
    return Deployment(
        seed=args.seed.encode("utf-8"),
        vnf_count=args.vnfs,
        host_count=args.hosts,
        with_tpm=args.tpm,
    )


def _cmd_demo(args, out) -> int:
    deployment = _build_deployment(args)
    trace = deployment.run_workflow()
    out.write("Figure 1 workflow complete.\n")
    for vnf_name, timings in trace.per_vnf.items():
        out.write(f"  {vnf_name} (on {deployment.vnf_host[vnf_name].name}):\n")
        for timing in timings:
            out.write(
                f"    {timing.step:45s}"
                f" sim={timing.simulated_seconds * 1000:8.3f} ms\n"
            )
    out.write(f"  total simulated: {trace.simulated_seconds * 1000:.3f} ms\n")
    out.write(f"  audit: {deployment.vm.audit.counts()}\n")
    return 0


def _cmd_attest(args, out) -> int:
    deployment = _build_deployment(args)
    if args.tamper:
        deployment.host.tamper_file(args.tamper, b"tampered-by-cli")
        out.write(f"tampered with {args.tamper}\n")
        if args.hide:
            deployment.host.hide_measurement(args.tamper)
            out.write("measurement log sanitized (root adversary)\n")
    result = deployment.vm.attest_host(deployment.agent_client,
                                       deployment.host.name)
    verdict = "TRUSTED" if result.trustworthy else "REJECTED"
    out.write(f"{deployment.host.name}: {verdict} "
              f"({result.entries_checked} IML entries")
    if result.tpm_verified:
        out.write(", TPM-verified")
    out.write(")\n")
    for failure in result.failures:
        out.write(f"  failure: {failure}\n")
    return 0 if result.trustworthy else 1


def _cmd_enroll(args, out) -> int:
    deployment = _build_deployment(args)
    for vnf_name in deployment.vnf_names:
        host = deployment.vnf_host[vnf_name]
        agent = deployment.agent_clients[host.name]
        if not deployment.vm.host_trusted(host.name):
            deployment.vm.attest_host(agent, host.name).raise_if_failed(
                host.name
            )
        address = str(deployment.controller_address())
        if args.csr:
            certificate = deployment.vm.enroll_vnf_csr(
                agent, host.name, vnf_name, address
            )
        else:
            certificate = deployment.vm.enroll_vnf(
                agent, host.name, vnf_name, address
            )
        summary = deployment.enclave_client(vnf_name).summary()
        out.write(
            f"{vnf_name}: serial {certificate.serial} on {host.name}; "
            f"controller says {summary['controller']} "
            f"v{summary['version']}\n"
        )
    variant = "CSR (in-enclave keys)" if args.csr else "VM-generated keys"
    out.write(f"enrolled {len(deployment.vnf_names)} VNF(s) via {variant}\n")
    return 0


def _cmd_fleet(args, out) -> int:
    deployment = _build_deployment(args)
    report = deployment.enroll_fleet(
        workers=args.workers, pooled_ias=not args.no_pooled_ias,
        processes=args.processes,
    )
    for host_name, timing in report.host_attestations.items():
        out.write(
            f"{host_name}: attested once for the fleet "
            f"(sim={timing.simulated_seconds * 1000:.3f} ms)\n"
        )
    for vnf_name, result in report.results.items():
        if result.succeeded:
            out.write(
                f"{vnf_name}: serial {result.certificate_serial} "
                f"on {result.host_name}\n"
            )
        else:
            out.write(f"{vnf_name}: FAILED — {result.error}\n")
    out.write(
        f"fleet of {len(report.results)} VNF(s), workers={report.workers}, "
        f"IAS connects={report.ias_connects} "
        f"(+{report.ias_reused_exchanges} reused), "
        f"sim={report.simulated_seconds * 1000:.3f} ms\n"
    )
    if report.processes:
        out.write(
            f"kernel pool: {report.processes} process(es), "
            f"{report.kernel_dispatches} dispatched, "
            f"{report.kernel_inline_calls} inline, "
            f"{report.ias_batched_exchanges} IAS verifications batched\n"
        )
    return 0 if report.fully_succeeded else 1


def _cmd_ratls(args, out) -> int:
    from repro.core.workflow import CONTROLLER_HOST

    def machinery(dep):
        return dep.network.messages_sent - dep.network.messages_to(
            CONTROLLER_HOST
        )

    # Reference: the out-of-band Figure 1 protocol, one VNF at a time.
    std = _build_deployment(args)
    std_start = machinery(std)
    for vnf_name in std.vnf_names:
        std.enroll(vnf_name)
    std_machinery = machinery(std) - std_start

    deployment = _build_deployment(args)
    verifier = deployment.build_ratls()
    ratls_start = machinery(deployment)
    for vnf_name in deployment.vnf_names:
        session = deployment.enroll_ratls(vnf_name)
        out.write(
            f"{vnf_name}: attested in-handshake on "
            f"{deployment.vnf_host[vnf_name].name} "
            f"(sim={session.total_simulated_seconds * 1000:.3f} ms)\n"
        )
    ratls_machinery = machinery(deployment) - ratls_start

    ias_before = deployment.ias.quotes_verified
    for vnf_name in deployment.vnf_names:
        enclave = deployment.credential_enclaves[vnf_name].enclave
        for _ in range(args.reconnects):
            enclave.ecall("disconnect")
            enclave.ecall("request", "GET",
                          "/wm/core/controller/summary/json", b"")
    out.write(
        f"{args.reconnects} reconnect(s) per VNF: "
        f"+{deployment.ias.quotes_verified - ias_before} IAS call(s), "
        f"{verifier.resumption_checks} attested resumption(s)\n"
    )
    count = len(deployment.vnf_names)
    ratio = (std_machinery / ratls_machinery if ratls_machinery else
             float("inf"))
    out.write(
        f"enrollment machinery: standard {std_machinery} msgs "
        f"({std_machinery / count:.1f}/vnf) vs. ra-tls {ratls_machinery} "
        f"msgs ({ratls_machinery / count:.1f}/vnf) — {ratio:.1f}x fewer\n"
    )
    return 0


def _cmd_sdn(args, out) -> int:
    deployment = _build_deployment(args)
    fabric = deployment.build_fabric(replica_count=args.replicas,
                                     endpoint_count=args.endpoints)
    for vnf_name in deployment.vnf_names:
        deployment.enroll_fabric(vnf_name)
    out.write(
        f"fabric: {fabric.replica_count} replica(s), "
        f"{fabric.switch_count()} switch(es), leader rank "
        f"{fabric.leader_rank}, {len(deployment.vnf_names)} credential(s) "
        "replicated\n"
    )

    victim = deployment.vnf_names[0]
    report = fabric.revoke_vnf(victim, "cli-demo")
    out.write(
        f"revoked {victim}: fan-out to {report.switches_reached} switch(es) "
        f"in sim={report.total_seconds * 1000:.3f} ms "
        f"(replication {report.replication_seconds * 1000:.3f} ms)\n"
    )

    crashed = fabric.leader_rank
    fabric.crash_replica(crashed)
    convergence = fabric.converge()
    out.write(
        f"crashed rank {crashed}: converged in "
        f"sim={convergence.seconds * 1000:.3f} ms — new leader rank "
        f"{convergence.new_leader}, {convergence.switches_rehomed} "
        "switch(es) re-homed\n"
    )
    digests = set(fabric.keystore_digests().values())
    out.write(
        f"live replicas {convergence.live_ranks} hold "
        f"{'IDENTICAL' if len(digests) == 1 else 'DIVERGENT'} keystores\n"
    )
    return 0 if len(digests) == 1 else 1


def _cmd_kms(args, out) -> int:
    deployment = _build_deployment(args)
    deployment.run_workflow()  # enrol VNFs: tenant tokens need credentials
    service = deployment.build_kms(shard_count=args.shards,
                                   seal_workers=args.seal_workers)

    vnf_names = deployment.vnf_names
    clients = {}
    for index in range(args.tenants):
        tenant = f"tenant-{index}"
        service.create_tenant(tenant)
        # Each tenant authorizes with an enrolled VNF's credential
        # (round-robin when tenants outnumber VNFs).
        vnf_name = vnf_names[index % len(vnf_names)]
        certificate = deployment.vm.issued_certificate(vnf_name)
        token = service.authorize(tenant, certificate)
        clients[tenant] = deployment.kms_client(tenant, token)
        out.write(f"{tenant}: authorized via {vnf_name} "
                  f"(serial {certificate.serial})\n")

    for tenant, client in clients.items():
        for index in range(args.secrets):
            client.store(f"secret-{index}", f"{tenant}:{index}".encode())
    service.quiesce()

    for tenant, client in clients.items():
        names = client.names()
        trail = service.audit_trail(tenant)
        out.write(f"{tenant}: {len(names)} secret(s), "
                  f"{len(trail)} audit event(s)\n")
        client.close()
    placement = " ".join(
        f"{label}={count}"
        for label, count in service.store_backend.secret_counts().items()
    )
    out.write(f"shard placement: {placement}\n")
    out.write(
        f"{args.tenants} tenant(s) x {args.secrets} secret(s) over "
        f"{service.shard_count()} shard(s), "
        f"sim={deployment.clock.now() * 1000:.3f} ms\n"
    )
    if service.kernel_pool is not None:
        out.write(
            f"seal kernel pool: {args.seal_workers} process(es), "
            f"{service.kernel_pool.dispatched} dispatched, "
            f"{service.kernel_pool.inline_calls} inline\n"
        )
        service.shutdown_seal_workers()
    return 0


def _cmd_metrics(args, out) -> int:
    deployment = _build_deployment(args)
    deployment.enable_telemetry()
    deployment.run_workflow()
    if args.traces:
        out.write(deployment.telemetry.tracer.export_json(indent=2))
        out.write("\n")
    else:
        out.write(deployment.scrape_metrics())
    deployment.disable_telemetry()
    return 0


def _cmd_lint(args, out) -> int:
    from repro.analysis.runner import run_lint
    return run_lint(args, out)


def _cmd_experiments(args, out) -> int:
    for exp_id, title, path in EXPERIMENTS:
        out.write(f"{exp_id}  {title:45s} {path}\n")
    out.write("run: pytest benchmarks/ --benchmark-only -s\n")
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "attest": _cmd_attest,
        "enroll": _cmd_enroll,
        "fleet": _cmd_fleet,
        "ratls": _cmd_ratls,
        "sdn": _cmd_sdn,
        "kms": _cmd_kms,
        "metrics": _cmd_metrics,
        "lint": _cmd_lint,
        "experiments": _cmd_experiments,
    }
    try:
        return handlers[args.command](args, out)
    except ReproError as exc:
        out.write(f"error: {type(exc).__name__}: {exc}\n")
        return 2


if __name__ == "__main__":
    sys.exit(main())
