"""Certificate revocation lists.

The Verification Manager revokes a VNF's credentials when the platform it
runs on stops being trustworthy; the controller consults the CRL during
trusted-HTTPS client authentication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.crypto.keys import EcPrivateKey, EcPublicKey
from repro.errors import CertificateRevoked, EncodingError
from repro.pki import der
from repro.pki.name import DistinguishedName

REASON_UNSPECIFIED = "unspecified"
REASON_KEY_COMPROMISE = "key-compromise"
REASON_PLATFORM_UNTRUSTED = "platform-untrusted"
REASON_SUPERSEDED = "superseded"
REASON_CESSATION = "cessation-of-operation"


@dataclass(frozen=True)
class RevokedEntry:
    """One revoked certificate: serial, time of revocation, and reason."""

    serial: int
    revoked_at: int
    reason: str = REASON_UNSPECIFIED


@dataclass(frozen=True)
class CertificateRevocationList:
    """A signed list of revoked serials from one issuer."""

    issuer: DistinguishedName
    issued_at: int
    next_update: int
    entries: Tuple[RevokedEntry, ...] = ()
    signature: bytes = b""

    def _tbs_list(self) -> list:
        return [
            self.issuer.to_list(),
            self.issued_at,
            self.next_update,
            [[e.serial, e.revoked_at, e.reason] for e in self.entries],
        ]

    def tbs_bytes(self) -> bytes:
        """Canonical encoding of the signed portion."""
        return der.encode(self._tbs_list())

    def to_bytes(self) -> bytes:
        """Full encoded CRL."""
        return der.encode([self._tbs_list(), self.signature])

    @classmethod
    def from_bytes(cls, data: bytes) -> "CertificateRevocationList":
        """Parse an encoded CRL."""
        decoded = der.decode(data)
        if not (isinstance(decoded, list) and len(decoded) == 2):
            raise EncodingError("malformed CRL envelope")
        tbs, signature = decoded
        if not (isinstance(tbs, list) and len(tbs) == 4):
            raise EncodingError("malformed CRL body")
        issuer, issued_at, next_update, raw_entries = tbs
        entries = tuple(
            RevokedEntry(serial=e[0], revoked_at=e[1], reason=e[2])
            for e in raw_entries
        )
        return cls(
            issuer=DistinguishedName.from_list(issuer),
            issued_at=issued_at,
            next_update=next_update,
            entries=entries,
            signature=signature,
        )

    def verify_signature(self, issuer_key: EcPublicKey) -> None:
        """Verify the issuer's signature over the CRL body."""
        issuer_key.verify(self.tbs_bytes(), self.signature)

    def is_revoked(self, serial: int) -> bool:
        """True if ``serial`` appears on the list."""
        return any(entry.serial == serial for entry in self.entries)

    def check(self, serial: int) -> None:
        """Raise :class:`CertificateRevoked` if ``serial`` is revoked."""
        for entry in self.entries:
            if entry.serial == serial:
                raise CertificateRevoked(
                    f"serial {serial} revoked at {entry.revoked_at}"
                    f" ({entry.reason})"
                )


def sign_crl(key: EcPrivateKey, issuer: DistinguishedName, issued_at: int,
             next_update: int,
             entries: Iterable[RevokedEntry]) -> CertificateRevocationList:
    """Build and sign a CRL."""
    unsigned = CertificateRevocationList(
        issuer=issuer,
        issued_at=issued_at,
        next_update=next_update,
        entries=tuple(entries),
    )
    return CertificateRevocationList(
        issuer=issuer,
        issued_at=issued_at,
        next_update=next_update,
        entries=unsigned.entries,
        signature=key.sign(unsigned.tbs_bytes()),
    )
