"""A Floodlight-style keystore.

Floodlight's trusted-HTTPS mode validates client certificates by looking
them up in its keystore, one entry per client.  The paper points out that
this forces the keystore to be updated every time the Verification Manager
mints a new credential — the operational cost that motivates the trusted-CA
design.  Both models are implemented so experiment E3 can compare them.
"""

from __future__ import annotations

from typing import Dict, List

from repro.crypto.keys import EcPrivateKey
from repro.errors import KeystoreError
from repro.pki.certificate import Certificate


class Keystore:
    """Alias-indexed store of certificates plus (optionally) a private key.

    Mirrors the Java keystore Floodlight uses: *trusted entries* are bare
    certificates (the per-client validation list); the *key entry* is the
    server's own certificate with its private key.
    """

    def __init__(self) -> None:
        self._trusted: Dict[str, Certificate] = {}
        self._key_entries: Dict[str, tuple] = {}

    # ----------------------------------------------------- trusted entries

    def add_trusted(self, alias: str, certificate: Certificate) -> None:
        """Add/replace a trusted client certificate under ``alias``."""
        if not alias:
            raise KeystoreError("alias must be non-empty")
        self._trusted[alias] = certificate

    def remove_trusted(self, alias: str) -> None:
        """Remove a trusted entry."""
        if alias not in self._trusted:
            raise KeystoreError(f"no trusted entry {alias!r}")
        del self._trusted[alias]

    def contains_certificate(self, certificate: Certificate) -> bool:
        """True if an identical certificate is a trusted entry.

        This linear scan *is* the per-client validation model: cost grows
        with the number of enrolled clients.
        """
        fp = certificate.fingerprint()
        return any(c.fingerprint() == fp for c in self._trusted.values())

    def trusted_aliases(self) -> List[str]:
        """All trusted-entry aliases."""
        return list(self._trusted.keys())

    # --------------------------------------------------------- key entries

    def set_key_entry(self, alias: str, key: EcPrivateKey,
                      certificate: Certificate) -> None:
        """Store a private key with its certificate (the server identity)."""
        if certificate.public_key_bytes != key.public.to_bytes():
            raise KeystoreError("certificate does not match the private key")
        self._key_entries[alias] = (key, certificate)

    def get_key_entry(self, alias: str) -> tuple:
        """Fetch ``(key, certificate)`` for ``alias``."""
        try:
            return self._key_entries[alias]
        except KeyError as exc:
            raise KeystoreError(f"no key entry {alias!r}") from exc

    # -------------------------------------------------------------- sizing

    def __len__(self) -> int:
        return len(self._trusted) + len(self._key_entries)
