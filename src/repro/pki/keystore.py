"""A Floodlight-style keystore.

Floodlight's trusted-HTTPS mode validates client certificates by looking
them up in its keystore, one entry per client.  The paper points out that
this forces the keystore to be updated every time the Verification Manager
mints a new credential — the operational cost that motivates the trusted-CA
design.  Both models are implemented so experiment E3 can compare them.

The store is thread-safe: the KMS shards (``repro.kms.service``) create
their per-shard identity entries through :meth:`Keystore.get_or_create`
from whatever thread first needs them, and the fleet scheduler updates
trusted entries from its worker pool.  The internal lock guards only the
dictionaries (a leaf in the documented order — see
``docs/CONCURRENCY.md``); ``get_or_create`` runs its factory *outside*
the lock and resolves races first-write-wins, so a factory is free to
call into the CA without inverting the lock order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.analysis.sanitizer import make_lock
from repro.crypto.keys import EcPrivateKey
from repro.errors import KeystoreError
from repro.pki.certificate import Certificate

#: A key-entry factory: builds ``(private key, certificate)`` on demand.
KeyEntryFactory = Callable[[], Tuple[EcPrivateKey, Certificate]]


class Keystore:
    """Alias-indexed store of certificates plus (optionally) a private key.

    Mirrors the Java keystore Floodlight uses: *trusted entries* are bare
    certificates (the per-client validation list); a *key entry* is a
    certificate with its private key (a server identity).
    """

    def __init__(self) -> None:
        self._trusted: Dict[str, Certificate] = {}
        self._key_entries: Dict[str, Tuple[EcPrivateKey, Certificate]] = {}
        self._lock = make_lock("keystore_entries")

    # ----------------------------------------------------- trusted entries

    def add_trusted(self, alias: str, certificate: Certificate) -> None:
        """Add/replace a trusted client certificate under ``alias``."""
        if not alias:
            raise KeystoreError("alias must be non-empty")
        with self._lock:
            self._trusted[alias] = certificate

    def remove_trusted(self, alias: str) -> None:
        """Remove a trusted entry.

        Raises:
            KeystoreError: no trusted entry under ``alias``.
        """
        with self._lock:
            if alias not in self._trusted:
                raise KeystoreError(f"no trusted entry {alias!r}")
            del self._trusted[alias]

    def get_trusted(self, alias: str) -> Certificate:
        """Fetch the trusted certificate stored under ``alias``.

        Raises:
            KeystoreError: no trusted entry under ``alias``.
        """
        with self._lock:
            try:
                return self._trusted[alias]
            except KeyError as exc:
                raise KeystoreError(f"no trusted entry {alias!r}") from exc

    def contains_certificate(self, certificate: Certificate) -> bool:
        """True if an identical certificate is a trusted entry.

        This linear scan *is* the per-client validation model: cost grows
        with the number of enrolled clients.
        """
        fp = certificate.fingerprint()
        with self._lock:
            entries = list(self._trusted.values())
        return any(c.fingerprint() == fp for c in entries)

    def trusted_aliases(self) -> List[str]:
        """All trusted-entry aliases."""
        with self._lock:
            return list(self._trusted.keys())

    # --------------------------------------------------------- key entries

    @staticmethod
    def _check_pair(key: EcPrivateKey, certificate: Certificate) -> None:
        if certificate.public_key_bytes != key.public.to_bytes():
            raise KeystoreError("certificate does not match the private key")

    def set_key_entry(self, alias: str, key: EcPrivateKey,
                      certificate: Certificate) -> None:
        """Store a private key with its certificate (a server identity)."""
        self._check_pair(key, certificate)
        with self._lock:
            self._key_entries[alias] = (key, certificate)

    def get_key_entry(self, alias: str) -> Tuple[EcPrivateKey, Certificate]:
        """Fetch ``(key, certificate)`` for ``alias``.

        Raises:
            KeystoreError: no key entry under ``alias`` (the explicit
                missing-key error; there is no ``None`` return path).
        """
        with self._lock:
            try:
                return self._key_entries[alias]
            except KeyError as exc:
                raise KeystoreError(f"no key entry {alias!r}") from exc

    def get_or_create(self, alias: str, factory: KeyEntryFactory,
                      ) -> Tuple[EcPrivateKey, Certificate]:
        """Atomically fetch the key entry for ``alias``, building it with
        ``factory`` on first use.

        The factory runs *outside* the keystore lock (it typically calls
        into the CA to have the certificate issued, and holding a leaf
        lock across that call would invert the documented order).  When
        two threads race on the same absent alias both factories may run;
        the first insert wins and the loser's entry is discarded — every
        caller observes the same ``(key, certificate)`` pair afterwards.
        """
        if not alias:
            raise KeystoreError("alias must be non-empty")
        with self._lock:
            entry = self._key_entries.get(alias)
        if entry is not None:
            return entry
        key, certificate = factory()
        self._check_pair(key, certificate)
        with self._lock:
            winner = self._key_entries.setdefault(alias, (key, certificate))
        return winner

    # -------------------------------------------------------------- sizing

    def __len__(self) -> int:
        with self._lock:
            return len(self._trusted) + len(self._key_entries)
