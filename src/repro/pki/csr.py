"""Certificate signing requests with proof of possession.

When a VNF credential enclave generates its key pair *inside* the enclave
(one of the provisioning variants), it sends the Verification Manager a CSR;
the self-signature proves the requester holds the private key.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

from repro.crypto.keys import EcPrivateKey, EcPublicKey
from repro.errors import EncodingError
from repro.pki import der
from repro.pki.name import DistinguishedName


@dataclass(frozen=True)
class CertificateSigningRequest:
    """A request that ``subject``'s ``public_key_bytes`` be certified."""

    subject: DistinguishedName
    public_key_bytes: bytes
    san: Tuple[str, ...] = ()
    signature: bytes = b""

    def _tbs_list(self) -> list:
        return [self.subject.to_list(), self.public_key_bytes, list(self.san)]

    def tbs_bytes(self) -> bytes:
        """Canonical encoding of the signed portion."""
        return der.encode(self._tbs_list())

    def to_bytes(self) -> bytes:
        """Full encoded CSR."""
        return der.encode([self._tbs_list(), self.signature])

    @classmethod
    def from_bytes(cls, data: bytes) -> "CertificateSigningRequest":
        """Parse an encoded CSR."""
        decoded = der.decode(data)
        if not (isinstance(decoded, list) and len(decoded) == 2):
            raise EncodingError("malformed CSR envelope")
        tbs, signature = decoded
        if not (isinstance(tbs, list) and len(tbs) == 3):
            raise EncodingError("malformed CSR body")
        subject, pub, san = tbs
        return cls(
            subject=DistinguishedName.from_list(subject),
            public_key_bytes=pub,
            san=tuple(san),
            signature=signature,
        )

    def verify_proof_of_possession(self) -> None:
        """Check the CSR is signed by the key it asks to certify.

        Memoised per instance: the enrollment pipeline checks possession
        twice on the CSR variant (once at the Verification Manager, once
        inside :meth:`repro.pki.ca.CertificateAuthority.issue_from_csr`),
        and the CSR is immutable, so the second check is a cached lookup.
        A failed verification raises and is *not* cached.
        """
        self._proof_of_possession_ok  # noqa: B018 — evaluate for effect

    @cached_property
    def _proof_of_possession_ok(self) -> bool:
        EcPublicKey.from_bytes(self.public_key_bytes).verify(
            self.tbs_bytes(), self.signature
        )
        return True


def create_csr(key: EcPrivateKey, subject: DistinguishedName,
               san: Tuple[str, ...] = ()) -> CertificateSigningRequest:
    """Build and self-sign a CSR for ``key``."""
    unsigned = CertificateSigningRequest(
        subject=subject, public_key_bytes=key.public.to_bytes(), san=san
    )
    return CertificateSigningRequest(
        subject=subject,
        public_key_bytes=key.public.to_bytes(),
        san=san,
        signature=key.sign(unsigned.tbs_bytes()),
    )
