"""Certificate-path building and validation."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import (
    CertificateError,
    UntrustedCertificate,
)
from repro.pki.certificate import Certificate, KEY_USAGE_CERT_SIGN
from repro.pki.crl import CertificateRevocationList
from repro.pki.truststore import Truststore

_MAX_PATH_LENGTH = 8


def build_path(leaf: Certificate, intermediates: Sequence[Certificate],
               truststore: Truststore) -> List[Certificate]:
    """Build a path from ``leaf`` to a trust anchor.

    Returns the chain ``[leaf, ..., anchor]``.  Raises
    :class:`UntrustedCertificate` when no anchor is reachable.
    """
    by_subject = {cert.subject: cert for cert in intermediates}
    path = [leaf]
    current = leaf
    for _ in range(_MAX_PATH_LENGTH):
        anchor = truststore.find(current.issuer)
        if anchor is not None:
            path.append(anchor)
            return path
        parent = by_subject.get(current.issuer)
        if parent is None or parent is current:
            break
        path.append(parent)
        current = parent
    raise UntrustedCertificate(
        f"no path from {leaf.subject} to a trust anchor"
    )


def validate_chain(leaf: Certificate, truststore: Truststore, now: int,
                   intermediates: Sequence[Certificate] = (),
                   crl: Optional[CertificateRevocationList] = None,
                   required_usage: Optional[str] = None) -> List[Certificate]:
    """Validate ``leaf`` against the truststore.

    Checks, in order: path construction, per-certificate validity windows,
    CA bits and cert-sign usage on issuing certificates, all signatures,
    revocation (if a CRL is supplied), and the leaf's key usage.

    Returns the validated chain for inspection.
    """
    path = build_path(leaf, intermediates, truststore)

    for cert in path:
        cert.check_validity(now)

    # Every non-leaf certificate must be a CA allowed to sign certificates.
    for issuer_cert in path[1:]:
        if not issuer_cert.is_ca:
            raise CertificateError(
                f"{issuer_cert.subject} issued a certificate but is not a CA"
            )
        if not issuer_cert.allows_usage(KEY_USAGE_CERT_SIGN):
            raise CertificateError(
                f"{issuer_cert.subject} lacks the cert-sign usage"
            )

    # Signature chain: each certificate is signed by the next one up.
    for cert, issuer_cert in zip(path, path[1:]):
        cert.verify_signature(issuer_cert.public_key)
    # The anchor is trusted by fiat but self-signature is still checked for
    # self-signed roots, catching corrupted stores early.
    anchor = path[-1]
    if anchor.is_self_signed():
        anchor.verify_signature(anchor.public_key)

    if crl is not None:
        crl.verify_signature(_issuer_key(path, crl))
        for cert in path[:-1]:
            crl.check(cert.serial)

    if required_usage is not None and not leaf.allows_usage(required_usage):
        raise CertificateError(
            f"{leaf.subject} does not allow usage {required_usage!r}"
        )
    return path


def _issuer_key(path: Sequence[Certificate], crl: CertificateRevocationList):
    """Find the public key of the CRL's issuer within the validated path."""
    for cert in path:
        if cert.subject == crl.issuer:
            return cert.public_key
    raise CertificateError(f"CRL issuer {crl.issuer} not in validated path")
