"""The certificate authority embedded in the Verification Manager.

Section 3 of the paper: *"The Verification Manager acts as a certificate
authority, and signs all newly created client certificates.  The Floodlight
controller must only validate that the client certificate has a valid
signature from the trusted certificate authority."*

Thread-safety: serial allocation, the issued-certificate ledger, the
revocation list and the CRL cache are all guarded by one internal lock so
concurrent fleet enrollments (:mod:`repro.core.fleet`) can never observe a
torn counter or double-issue a serial.  For *deterministic* serial
assignment under a worker pool, callers may :meth:`reserve_serial` numbers
up front (in a well-defined order) and pass them to :meth:`issue` — the
pool then produces byte-identical certificates regardless of completion
order.  See ``docs/CONCURRENCY.md``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.sanitizer import make_rlock, shared_state
from repro.crypto.keys import EcPrivateKey, generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.errors import CertificateError, RevocationError
from repro.pki.certificate import (
    Certificate,
    KEY_USAGE_CERT_SIGN,
    KEY_USAGE_CLIENT_AUTH,
    KEY_USAGE_CRL_SIGN,
    KEY_USAGE_SERVER_AUTH,
)
from repro.pki.crl import (
    CertificateRevocationList,
    REASON_UNSPECIFIED,
    RevokedEntry,
    sign_crl,
)
from repro.pki.csr import CertificateSigningRequest
from repro.pki.name import DistinguishedName

DEFAULT_VALIDITY = 365 * 24 * 3600  # one simulated year


@shared_state("_next_serial", "_issued", "_revoked", "_crl_cache")
class CertificateAuthority:
    """A self-signed root CA that issues and revokes end-entity certificates.

    Args:
        name: the CA's distinguished name.
        now: issuance time for the self-signed root certificate.
        rng: randomness source for key generation.
        validity: root-certificate lifetime in seconds.
    """

    def __init__(self, name: DistinguishedName, now: int = 0,
                 rng: Optional[HmacDrbg] = None,
                 validity: int = 10 * DEFAULT_VALIDITY) -> None:
        self.name = name
        self._key: EcPrivateKey = generate_keypair(rng)
        self._next_serial = 1
        self._lock = make_rlock("ca")
        self._issued: Dict[int, Certificate] = {}
        self._revoked: List[RevokedEntry] = []
        # (now, update_interval, revocation count) -> signed CRL.  One
        # entry is enough: callers re-request the *current* CRL far more
        # often than time advances or revocations land, and each signing
        # is a full ECDSA operation.
        self._crl_cache: Optional[Tuple[Tuple[int, int, int],
                                        CertificateRevocationList]] = None
        # Optional process pool for the signing math (duck-typed
        # repro.core.kernels.KernelPool; None = sign in-process).
        self._kernel_pool = None
        self.certificate = self._self_sign(now, validity)

    def attach_kernel_pool(self, pool) -> None:
        """Dispatch certificate signing to a kernel pool (``None``
        detaches).  Signing already happens outside the CA lock, and
        RFC 6979 makes pooled signatures byte-identical, so attaching a
        pool changes wall-clock behaviour only."""
        self._kernel_pool = pool

    def _sign_tbs(self, tbs_bytes: bytes, serial: int) -> bytes:
        pool = self._kernel_pool
        if pool is None:
            return self._key.sign(tbs_bytes)
        return pool.sign_cert(tbs_bytes, self._key.to_bytes(), serial)

    # ------------------------------------------------------------- internals

    def _allocate_serial(self) -> int:
        with self._lock:
            serial = self._next_serial
            self._next_serial += 1
            return serial

    def reserve_serial(self) -> int:
        """Atomically reserve the next serial number for a later issuance.

        A fleet scheduler reserves serials for every submitted VNF *in
        submission order* before dispatching workers, then passes each
        reservation to :meth:`issue` — so the certificate a VNF receives
        is independent of worker interleaving.
        """
        return self._allocate_serial()

    def _self_sign(self, now: int, validity: int) -> Certificate:
        unsigned = Certificate(
            serial=self._allocate_serial(),
            subject=self.name,
            issuer=self.name,
            public_key_bytes=self._key.public.to_bytes(),
            not_before=now,
            not_after=now + validity,
            is_ca=True,
            key_usage=(KEY_USAGE_CERT_SIGN, KEY_USAGE_CRL_SIGN),
        )
        cert = replace(unsigned, signature=self._key.sign(unsigned.tbs_bytes()))
        self._issued[cert.serial] = cert
        return cert

    # ------------------------------------------------------------- issuance

    def issue(self, subject: DistinguishedName, public_key_bytes: bytes,
              now: int, validity: int = DEFAULT_VALIDITY,
              key_usage: Tuple[str, ...] = (KEY_USAGE_CLIENT_AUTH,),
              san: Tuple[str, ...] = (), is_ca: bool = False,
              serial: Optional[int] = None) -> Certificate:
        """Issue a certificate over an externally supplied public key.

        This is the paper's main path: the VM generates the key pair itself
        and provisions both halves into the enclave (Fig. 1 step 5).

        Args:
            serial: a number previously returned by :meth:`reserve_serial`;
                ``None`` (the default) allocates the next one.  Issuing the
                same serial twice raises :class:`CertificateError`.
        """
        if serial is None:
            serial = self._allocate_serial()
        unsigned = Certificate(
            serial=serial,
            subject=subject,
            issuer=self.name,
            public_key_bytes=public_key_bytes,
            not_before=now,
            not_after=now + validity,
            is_ca=is_ca,
            key_usage=key_usage,
            san=san,
        )
        cert = replace(unsigned,
                       signature=self._sign_tbs(unsigned.tbs_bytes(), serial))
        with self._lock:
            if cert.serial in self._issued:
                raise CertificateError(
                    f"serial {cert.serial} already issued (double issuance)"
                )
            self._issued[cert.serial] = cert
        return cert

    def issue_from_csr(self, csr: CertificateSigningRequest, now: int,
                       validity: int = DEFAULT_VALIDITY,
                       key_usage: Tuple[str, ...] = (KEY_USAGE_CLIENT_AUTH,),
                       serial: Optional[int] = None) -> Certificate:
        """Issue from a CSR after checking proof of possession.

        This is the enclave-generated-key variant: the private key never
        exists outside the enclave at all.
        """
        csr.verify_proof_of_possession()
        return self.issue(
            subject=csr.subject,
            public_key_bytes=csr.public_key_bytes,
            now=now,
            validity=validity,
            key_usage=key_usage,
            san=csr.san,
            serial=serial,
        )

    def issue_server_certificate(self, subject: DistinguishedName,
                                 public_key_bytes: bytes, now: int,
                                 validity: int = DEFAULT_VALIDITY,
                                 san: Tuple[str, ...] = ()) -> Certificate:
        """Issue a server-auth certificate (used by the controller's HTTPS)."""
        return self.issue(
            subject=subject,
            public_key_bytes=public_key_bytes,
            now=now,
            validity=validity,
            key_usage=(KEY_USAGE_SERVER_AUTH,),
            san=san,
        )

    # ------------------------------------------------------------ revocation

    def revoke(self, serial: int, now: int,
               reason: str = REASON_UNSPECIFIED) -> None:
        """Mark an issued certificate as revoked."""
        with self._lock:
            if serial not in self._issued:
                raise RevocationError(
                    f"serial {serial} was not issued by this CA"
                )
            if serial == self.certificate.serial:
                raise RevocationError(
                    "refusing to revoke the root certificate"
                )
            if any(entry.serial == serial for entry in self._revoked):
                return  # already revoked: idempotent
            self._revoked.append(RevokedEntry(serial, now, reason))

    def current_crl(self, now: int,
                    update_interval: int = 24 * 3600) -> CertificateRevocationList:
        """The current signed CRL.

        Re-signing is skipped when nothing observable changed since the
        last call (same issuance time, same interval, same revocation
        count) — every CRL subscriber push used to pay a fresh ECDSA
        signature for identical bytes.  CRL objects are immutable, so
        sharing the cached instance is safe.
        """
        with self._lock:
            key = (now, update_interval, len(self._revoked))
            if self._crl_cache is not None and self._crl_cache[0] == key:
                return self._crl_cache[1]
            revoked = list(self._revoked)
        crl = sign_crl(
            self._key, self.name, now, now + update_interval, revoked
        )
        with self._lock:
            self._crl_cache = (key, crl)
        return crl

    # ------------------------------------------------------------- queries

    def is_issued(self, serial: int) -> bool:
        """Has a certificate with ``serial`` already been issued?

        Lets a retrying enrollment detect that its *reserved* serial was
        consumed by a previous attempt (which then failed downstream of
        issuance) and fall back to a fresh allocation instead of tripping
        the double-issuance guard.
        """
        with self._lock:
            return serial in self._issued

    def issued_certificate(self, serial: int) -> Certificate:
        """Look up a certificate this CA issued."""
        with self._lock:
            try:
                return self._issued[serial]
            except KeyError as exc:
                raise CertificateError(f"unknown serial {serial}") from exc

    @property
    def issued_count(self) -> int:
        """How many certificates (including the root) have been issued."""
        with self._lock:
            return len(self._issued)
