"""A deterministic tag-length-value encoding ("DER-lite").

Real DER drags in ASN.1 object identifiers and a large grammar; the
protocols in this library only need a *canonical, self-describing* encoding
of integers, byte strings, UTF-8 strings, booleans and sequences, so that
signatures over encoded structures are stable.  The format:

``tag (1 byte) || length (4 bytes, big-endian) || value``

Sequences nest by concatenating encoded elements in the value field.  The
encoding of a given Python value is unique, which is the property signing
relies on.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.errors import EncodingError

TAG_INT = 0x02
TAG_BYTES = 0x04
TAG_NULL = 0x05
TAG_UTF8 = 0x0C
TAG_BOOL = 0x01
TAG_SEQ = 0x30

_MAX_LENGTH = 1 << 26  # 64 MiB sanity bound on any single element


def _header(tag: int, length: int) -> bytes:
    if length > _MAX_LENGTH:
        raise EncodingError(f"element too large: {length}")
    return struct.pack(">BI", tag, length)


def encode(value: Any) -> bytes:
    """Encode ``value`` canonically.

    Supported types: ``int`` (signed), ``bytes``, ``str``, ``bool``,
    ``None`` and ``list``/``tuple`` (encoded as sequences).
    """
    if value is None:
        return _header(TAG_NULL, 0)
    if isinstance(value, bool):  # must precede int check
        return _header(TAG_BOOL, 1) + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        length = max(1, (value.bit_length() + 8) // 8)  # room for sign bit
        body = value.to_bytes(length, "big", signed=True)
        return _header(TAG_INT, len(body)) + body
    if isinstance(value, (bytes, bytearray, memoryview)):
        body = bytes(value)
        return _header(TAG_BYTES, len(body)) + body
    if isinstance(value, str):
        body = value.encode("utf-8")
        return _header(TAG_UTF8, len(body)) + body
    if isinstance(value, (list, tuple)):
        body = b"".join(encode(item) for item in value)
        return _header(TAG_SEQ, len(body)) + body
    raise EncodingError(f"cannot encode {type(value).__name__}")


def _decode_one(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset + 5 > len(data):
        raise EncodingError("truncated TLV header")
    tag, length = struct.unpack_from(">BI", data, offset)
    offset += 5
    if length > _MAX_LENGTH:
        raise EncodingError(f"declared length too large: {length}")
    if offset + length > len(data):
        raise EncodingError("truncated TLV value")
    body = data[offset:offset + length]
    offset += length
    if tag == TAG_NULL:
        if length != 0:
            raise EncodingError("NULL with non-empty body")
        return None, offset
    if tag == TAG_BOOL:
        if length != 1 or body not in (b"\x00", b"\x01"):
            raise EncodingError("malformed boolean")
        return body == b"\x01", offset
    if tag == TAG_INT:
        if length == 0:
            raise EncodingError("empty integer")
        return int.from_bytes(body, "big", signed=True), offset
    if tag == TAG_BYTES:
        return body, offset
    if tag == TAG_UTF8:
        try:
            return body.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise EncodingError("invalid UTF-8 string") from exc
    if tag == TAG_SEQ:
        items: List[Any] = []
        inner = 0
        while inner < length:
            item, new_inner = _decode_one(body, inner)
            items.append(item)
            inner = new_inner
        return items, offset
    raise EncodingError(f"unknown tag 0x{tag:02x}")


def decode(data: bytes) -> Any:
    """Decode a single encoded value; rejects trailing garbage."""
    value, consumed = _decode_one(data, 0)
    if consumed != len(data):
        raise EncodingError(f"{len(data) - consumed} trailing bytes after TLV")
    return value
