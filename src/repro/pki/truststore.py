"""Trust anchors: the "provision the controller with a CA" half of the paper's
keystore argument."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import KeystoreError, UntrustedCertificate
from repro.pki.certificate import Certificate
from repro.pki.name import DistinguishedName


class Truststore:
    """A set of trusted CA certificates, indexed by subject name."""

    def __init__(self, anchors: Iterable[Certificate] = ()) -> None:
        self._anchors: Dict[DistinguishedName, Certificate] = {}
        for anchor in anchors:
            self.add(anchor)

    def add(self, anchor: Certificate) -> None:
        """Add a trust anchor; it must be a CA certificate."""
        if not anchor.is_ca:
            raise KeystoreError(
                f"refusing non-CA certificate {anchor.subject} as trust anchor"
            )
        self._anchors[anchor.subject] = anchor

    def remove(self, subject: DistinguishedName) -> None:
        """Remove an anchor by subject name."""
        if subject not in self._anchors:
            raise KeystoreError(f"no trust anchor for {subject}")
        del self._anchors[subject]

    def find(self, subject: DistinguishedName) -> Optional[Certificate]:
        """Look up an anchor by subject name, or ``None``."""
        return self._anchors.get(subject)

    def require(self, subject: DistinguishedName) -> Certificate:
        """Look up an anchor, raising if absent."""
        anchor = self.find(subject)
        if anchor is None:
            raise UntrustedCertificate(f"no trust anchor for {subject}")
        return anchor

    def __contains__(self, subject: DistinguishedName) -> bool:
        return subject in self._anchors

    def __len__(self) -> int:
        return len(self._anchors)

    def anchors(self) -> List[Certificate]:
        """All anchors, in insertion order."""
        return list(self._anchors.values())
