"""Certificates and trust management (an X.509-lite PKI).

The paper's Verification Manager doubles as a certificate authority: it
issues the client certificates VNFs use against the Floodlight northbound
API, and the controller is provisioned with the CA certificate instead of a
per-client keystore.  This subpackage implements everything that story needs:

- :mod:`repro.pki.der` — a deterministic TLV encoding ("DER-lite").
- :mod:`repro.pki.name` — distinguished names.
- :mod:`repro.pki.certificate` — certificates with validity, basic
  constraints, key usage and SAN extensions.
- :mod:`repro.pki.csr` — signing requests with proof of possession.
- :mod:`repro.pki.ca` — the certificate authority.
- :mod:`repro.pki.crl` — revocation lists.
- :mod:`repro.pki.chain` — path building and validation.
- :mod:`repro.pki.keystore` / :mod:`repro.pki.truststore` — the two
  controller-side validation models compared in the paper (per-client
  keystore vs. a single trusted CA).
"""

from repro.pki.name import DistinguishedName
from repro.pki.certificate import Certificate
from repro.pki.csr import CertificateSigningRequest
from repro.pki.ca import CertificateAuthority
from repro.pki.crl import CertificateRevocationList
from repro.pki.chain import validate_chain
from repro.pki.keystore import Keystore
from repro.pki.truststore import Truststore

__all__ = [
    "DistinguishedName",
    "Certificate",
    "CertificateSigningRequest",
    "CertificateAuthority",
    "CertificateRevocationList",
    "validate_chain",
    "Keystore",
    "Truststore",
]
