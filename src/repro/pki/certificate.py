"""Certificates: the credential objects the whole paper revolves around.

A certificate binds a subject name to a P-256 public key, carries a validity
window in simulation seconds, the basic-constraints CA flag, key-usage
strings, and subject-alternative names, and is signed by its issuer over the
canonical encoding of the to-be-signed portion.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple

from repro.crypto.keys import EcPublicKey
from repro.crypto.sha256 import sha256
from repro.errors import CertificateError, CertificateExpired, EncodingError
from repro.pki import der
from repro.pki.name import DistinguishedName

KEY_USAGE_CERT_SIGN = "cert-sign"
KEY_USAGE_CRL_SIGN = "crl-sign"
KEY_USAGE_CLIENT_AUTH = "client-auth"
KEY_USAGE_SERVER_AUTH = "server-auth"
KEY_USAGE_DIGITAL_SIGNATURE = "digital-signature"

_VERSION = 3  # mirrors X.509 v3


@dataclass(frozen=True)
class Certificate:
    """An issued certificate.

    Attributes:
        serial: issuer-unique serial number.
        subject: name of the key holder.
        issuer: name of the signing authority.
        public_key_bytes: SEC1 encoding of the subject's P-256 public key.
        not_before / not_after: validity window, inclusive, in seconds.
        is_ca: basic-constraints CA flag.
        key_usage: tuple of usage strings (see module constants).
        san: subject alternative names (e.g. container addresses).
        extensions: named opaque extensions ``(name, value_bytes)`` —
            e.g. the RA-TLS SGX-quote extension.  Signed as part of the
            TBS portion; certificates without extensions keep the exact
            pre-extension wire encoding.
        signature: issuer's ECDSA signature over :meth:`tbs_bytes`.
    """

    serial: int
    subject: DistinguishedName
    issuer: DistinguishedName
    public_key_bytes: bytes
    not_before: int
    not_after: int
    is_ca: bool = False
    key_usage: Tuple[str, ...] = ()
    san: Tuple[str, ...] = ()
    extensions: Tuple[Tuple[str, bytes], ...] = ()
    signature: bytes = b""

    def __post_init__(self) -> None:
        if self.not_after < self.not_before:
            raise CertificateError("not_after precedes not_before")
        if self.serial < 0:
            raise CertificateError("negative serial number")

    # ------------------------------------------------------------ encoding

    def _tbs_list(self) -> list:
        tbs = [
            _VERSION,
            self.serial,
            self.subject.to_list(),
            self.issuer.to_list(),
            self.public_key_bytes,
            self.not_before,
            self.not_after,
            self.is_ca,
            list(self.key_usage),
            list(self.san),
        ]
        if self.extensions:
            # Appended only when present so extension-free certificates —
            # everything the CA issues today — keep their historical
            # byte encoding (fleet byte-identity, experiment E12).
            tbs.append([[name, value] for name, value in self.extensions])
        return tbs

    def tbs_bytes(self) -> bytes:
        """Canonical encoding of the to-be-signed portion."""
        return der.encode(self._tbs_list())

    def to_bytes(self) -> bytes:
        """Full encoded certificate (TBS + signature)."""
        return der.encode([self._tbs_list(), self.signature])

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        """Parse an encoded certificate, validating structure."""
        decoded = der.decode(data)
        if not (isinstance(decoded, list) and len(decoded) == 2):
            raise EncodingError("malformed certificate envelope")
        tbs, signature = decoded
        if not (isinstance(tbs, list) and len(tbs) in (10, 11)):
            raise EncodingError("malformed certificate body")
        (version, serial, subject, issuer, pub, not_before, not_after,
         is_ca, key_usage, san) = tbs[:10]
        extensions: Tuple[Tuple[str, bytes], ...] = ()
        if len(tbs) == 11:
            ext_list = tbs[10]
            if not (isinstance(ext_list, list) and ext_list and all(
                    isinstance(e, list) and len(e) == 2
                    and isinstance(e[0], str) and isinstance(e[1], bytes)
                    for e in ext_list)):
                raise EncodingError("malformed certificate extensions")
            extensions = tuple((name, value) for name, value in ext_list)
        if version != _VERSION:
            raise CertificateError(f"unsupported certificate version {version}")
        if not isinstance(signature, bytes):
            raise EncodingError("malformed certificate signature")
        return cls(
            serial=serial,
            subject=DistinguishedName.from_list(subject),
            issuer=DistinguishedName.from_list(issuer),
            public_key_bytes=pub,
            not_before=not_before,
            not_after=not_after,
            is_ca=is_ca,
            key_usage=tuple(key_usage),
            san=tuple(san),
            extensions=extensions,
            signature=signature,
        )

    # ------------------------------------------------------------ semantics

    @cached_property
    def public_key(self) -> EcPublicKey:
        """The subject's public key as a validated object.

        Cached on the instance: chain validation, CRL signature checks
        and per-handshake peer validation all re-read the issuer key of
        the same few :class:`Certificate` objects, and re-parsing (plus
        re-validating) the SEC1 bytes on every access was a measurable
        slice of handshake time.  The dataclass is frozen, so the bytes
        can never change under the cache.
        """
        return EcPublicKey.from_bytes(self.public_key_bytes)

    def fingerprint(self) -> bytes:
        """SHA-256 over the full encoded certificate."""
        return sha256(self.to_bytes())

    def is_self_signed(self) -> bool:
        """True when subject and issuer names coincide."""
        return self.subject == self.issuer

    def check_validity(self, now: int) -> None:
        """Raise :class:`CertificateExpired` outside the validity window."""
        if not self.not_before <= now <= self.not_after:
            raise CertificateExpired(
                f"certificate {self.subject} valid [{self.not_before}, "
                f"{self.not_after}], checked at {now}"
            )

    def extension(self, name: str) -> Optional[bytes]:
        """The value of the named extension, or ``None`` when absent."""
        for ext_name, value in self.extensions:
            if ext_name == name:
                return value
        return None

    def allows_usage(self, usage: str) -> bool:
        """True if ``usage`` is permitted (empty key_usage permits all)."""
        return not self.key_usage or usage in self.key_usage

    def verify_signature(self, issuer_key: EcPublicKey) -> None:
        """Verify the issuer's signature over the TBS bytes.

        Raises:
            repro.errors.InvalidSignature: on verification failure.
        """
        issuer_key.verify(self.tbs_bytes(), self.signature)
