"""Distinguished names for certificate subjects and issuers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.pki import der


@dataclass(frozen=True, order=True)
class DistinguishedName:
    """A minimal X.500-style name.

    Only the attributes the VNF/controller deployment uses are modelled;
    ``common_name`` is mandatory because all certificate lookups key on it.
    """

    common_name: str
    organization: str = ""
    organizational_unit: str = ""
    country: str = ""

    def __post_init__(self) -> None:
        if not self.common_name:
            raise EncodingError("common_name must be non-empty")

    def __str__(self) -> str:
        parts = [f"CN={self.common_name}"]
        if self.organization:
            parts.append(f"O={self.organization}")
        if self.organizational_unit:
            parts.append(f"OU={self.organizational_unit}")
        if self.country:
            parts.append(f"C={self.country}")
        return ",".join(parts)

    def to_list(self) -> list:
        """Canonical list form used inside encoded certificates."""
        return [self.common_name, self.organization,
                self.organizational_unit, self.country]

    @classmethod
    def from_list(cls, items: list) -> "DistinguishedName":
        """Rebuild from the canonical list form."""
        if len(items) != 4 or not all(isinstance(i, str) for i in items):
            raise EncodingError("malformed distinguished name")
        return cls(*items)

    def to_bytes(self) -> bytes:
        """Standalone encoded form."""
        return der.encode(self.to_list())

    @classmethod
    def from_bytes(cls, data: bytes) -> "DistinguishedName":
        """Parse a standalone encoded name."""
        return cls.from_list(der.decode(data))
