"""EC key-pair objects with serialization, shared by PKI, TLS, SGX and IAS."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.ec import P256, Point, _Curve
from repro.crypto.ecdsa import (
    ecdsa_sign,
    ecdsa_verify,
    signature_from_bytes,
    signature_to_bytes,
)
from repro.crypto.rng import HmacDrbg, default_rng
from repro.errors import InvalidKey


@dataclass(frozen=True)
class EcPublicKey:
    """A validated P-256 public key."""

    point: Point
    curve: _Curve = P256

    def __post_init__(self) -> None:
        self.curve.validate_public(self.point)

    def verify(self, message: bytes, signature: bytes) -> None:
        """Verify a fixed-width ``r || s`` signature over ``message``."""
        ecdsa_verify(
            self.point, message, signature_from_bytes(signature, self.curve),
            self.curve,
        )

    def to_bytes(self) -> bytes:
        """Uncompressed SEC1 encoding."""
        return self.curve.encode_point(self.point)

    @classmethod
    def from_bytes(cls, data: bytes, curve: _Curve = P256) -> "EcPublicKey":
        """Parse an uncompressed SEC1 point.

        The raw decode skips the on-curve check (``validate=False``)
        because the constructor's :meth:`~repro.crypto.ec._Curve.
        validate_public` performs the full validation anyway — previously
        the point was checked twice on every parse.  Malformed or
        off-curve input still raises :class:`~repro.errors.InvalidPoint`.
        """
        return cls(curve.decode_point(data, validate=False), curve)

    def fingerprint(self) -> bytes:
        """SHA-256 of the SEC1 encoding — a stable key identifier."""
        from repro.crypto.sha256 import sha256

        return sha256(self.to_bytes())


@dataclass(frozen=True)
class EcPrivateKey:
    """A P-256 private key with its public half."""

    scalar: int
    public: EcPublicKey
    curve: _Curve = P256

    def __post_init__(self) -> None:
        if not 1 <= self.scalar < self.curve.n:
            raise InvalidKey("private scalar out of range")

    def sign(self, message: bytes) -> bytes:
        """Deterministic ECDSA signature, fixed-width ``r || s``."""
        return signature_to_bytes(
            ecdsa_sign(self.scalar, message, self.curve), self.curve
        )

    def to_bytes(self) -> bytes:
        """Fixed-width big-endian scalar encoding."""
        return self.scalar.to_bytes(self.curve.coordinate_size, "big")

    @classmethod
    def from_bytes(cls, data: bytes, curve: _Curve = P256) -> "EcPrivateKey":
        """Rebuild a private key (and derive its public half) from bytes."""
        scalar = int.from_bytes(data, "big")
        return from_scalar(scalar, curve)


def from_scalar(scalar: int, curve: _Curve = P256) -> EcPrivateKey:
    """Build the key pair for a given private scalar."""
    point = curve.multiply_generator(scalar)
    if point is None:
        raise InvalidKey("scalar maps to the point at infinity")
    return EcPrivateKey(scalar, EcPublicKey(point, curve), curve)


def generate_keypair(rng: Optional[HmacDrbg] = None,
                     curve: _Curve = P256) -> EcPrivateKey:
    """Generate a fresh P-256 key pair from ``rng`` (default process DRBG)."""
    rng = rng or default_rng()
    return from_scalar(rng.random_scalar(curve.n), curve)


def ephemeral_pair(rng: Optional[HmacDrbg] = None,
                   curve: _Curve = P256) -> Tuple[int, Point]:
    """Generate an ephemeral ECDH pair as ``(scalar, public point)``."""
    key = generate_keypair(rng, curve)
    return key.scalar, key.public.point
