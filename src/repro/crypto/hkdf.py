"""HKDF (RFC 5869) over HMAC-SHA256.

Used for sealing-key derivation in the SGX model and for credential transport
keys in the provisioning protocol.
"""

from __future__ import annotations

from repro.crypto.hmac import hmac_sha256
from repro.crypto.sha256 import DIGEST_SIZE
from repro.errors import CryptoError

_MAX_OUTPUT = 255 * DIGEST_SIZE


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """Extract a pseudorandom key from input keying material ``ikm``."""
    if not salt:
        salt = b"\x00" * DIGEST_SIZE
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand pseudorandom key ``prk`` into ``length`` output bytes."""
    if length <= 0:
        raise CryptoError("HKDF output length must be positive")
    if length > _MAX_OUTPUT:
        raise CryptoError(f"HKDF output too long: {length} > {_MAX_OUTPUT}")
    blocks = []
    block = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        block = hmac_sha256(prk, block + info + bytes([counter]))
        blocks.append(block)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(ikm: bytes, salt: bytes, info: bytes, length: int) -> bytes:
    """One-shot extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
