"""ECDSA over P-256 with RFC 6979 deterministic nonces.

Deterministic nonces remove the catastrophic nonce-reuse failure mode and —
just as importantly for this library — make signatures reproducible across
simulation runs with the same keys and messages.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.crypto.ec import P256, Point, _Curve
from repro.crypto.hmac import hmac_sha256
from repro.crypto.sha256 import sha256
from repro.errors import InvalidKey, InvalidSignature


def _bits2int(data: bytes, order: int) -> int:
    """Leftmost-bits conversion from RFC 6979 section 2.3.2."""
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - order.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _rfc6979_nonce(private_key: int, digest: bytes, order: int) -> int:
    """Derive the per-signature nonce k deterministically (RFC 6979)."""
    qlen_bytes = (order.bit_length() + 7) // 8
    x = private_key.to_bytes(qlen_bytes, "big")
    h1 = _bits2int(digest, order) % order
    h1_bytes = h1.to_bytes(qlen_bytes, "big")

    v = b"\x01" * 32
    k = b"\x00" * 32
    k = hmac_sha256(k, v + b"\x00" + x + h1_bytes)
    v = hmac_sha256(k, v)
    k = hmac_sha256(k, v + b"\x01" + x + h1_bytes)
    v = hmac_sha256(k, v)

    while True:
        t = b""
        while len(t) < qlen_bytes:
            v = hmac_sha256(k, v)
            t += v
        candidate = _bits2int(t[:qlen_bytes], order)
        if 1 <= candidate < order:
            return candidate
        k = hmac_sha256(k, v + b"\x00")
        v = hmac_sha256(k, v)


def ecdsa_sign(private_key: int, message: bytes,
               curve: _Curve = P256) -> Tuple[int, int]:
    """Sign ``message`` (hashed with SHA-256 internally); returns ``(r, s)``."""
    n = curve.n
    if not 1 <= private_key < n:
        raise InvalidKey("private scalar out of range")
    digest = sha256(message)
    z = _bits2int(digest, n) % n
    while True:
        k = _rfc6979_nonce(private_key, digest, n)
        point = curve.multiply_generator(k)
        assert point is not None  # k in [1, n) never yields infinity
        r = point.x % n
        if r == 0:
            digest = sha256(digest)  # degenerate case: re-derive (never hit)
            continue
        k_inv = pow(k, -1, n)  # extended-gcd inverse: ~7x cheaper than k**(n-2)
        s = k_inv * (z + r * private_key) % n
        if s == 0:
            digest = sha256(digest)
            continue
        return (r, s)


def ecdsa_verify(public_key: Point, message: bytes, signature: Tuple[int, int],
                 curve: _Curve = P256) -> None:
    """Verify ``signature`` over ``message``.

    Hot path: key validation hits the curve's validated-point LRU for
    repeat verifies against the same key, ``s`` is inverted with the
    extended-gcd ``pow(s, -1, n)`` (~7x cheaper than the Fermat power for
    256-bit moduli, identical result), and ``u1*G + u2*Q`` is computed in
    a single Shamir/Strauss wNAF ladder
    (:meth:`~repro.crypto.ec._Curve.multiply_dual`) instead of two full
    scalar multiplications plus an addition.  The accept/reject verdict is
    bit-identical to :func:`ecdsa_verify_reference`.

    Raises:
        InvalidSignature: if the signature does not verify.
    """
    curve.validate_public(public_key)
    r, s = signature
    n = curve.n
    if not (1 <= r < n and 1 <= s < n):
        raise InvalidSignature("signature component out of range")
    z = _bits2int(sha256(message), n) % n
    s_inv = pow(s, -1, n)
    u1 = z * s_inv % n
    u2 = r * s_inv % n
    point: Optional[Point] = curve.multiply_dual(u1, u2, public_key)
    if point is None or point.x % n != r:
        raise InvalidSignature("ECDSA verification failed")


def ecdsa_verify_reference(public_key: Point, message: bytes,
                           signature: Tuple[int, int],
                           curve: _Curve = P256) -> None:
    """The seed verification path, kept as the cross-check oracle.

    Uncached full-order key validation plus two reference double-and-add
    ladders and a final addition — exactly what :func:`ecdsa_verify` did
    before the fast engine.  The E11 benchmark and the property suite pin
    :func:`ecdsa_verify` against this implementation.

    Raises:
        InvalidSignature: if the signature does not verify.
    """
    curve.validate_public_uncached(public_key)
    r, s = signature
    n = curve.n
    if not (1 <= r < n and 1 <= s < n):
        raise InvalidSignature("signature component out of range")
    z = _bits2int(sha256(message), n) % n
    s_inv = pow(s, n - 2, n)
    u1 = z * s_inv % n
    u2 = r * s_inv % n
    point: Optional[Point] = curve.add(
        curve.multiply(u1, curve.generator), curve.multiply(u2, public_key)
    )
    if point is None or point.x % n != r:
        raise InvalidSignature("ECDSA verification failed")


def signature_to_bytes(signature: Tuple[int, int], curve: _Curve = P256) -> bytes:
    """Fixed-width ``r || s`` encoding (64 bytes for P-256)."""
    size = curve.coordinate_size
    r, s = signature
    return r.to_bytes(size, "big") + s.to_bytes(size, "big")


def signature_from_bytes(data: bytes, curve: _Curve = P256) -> Tuple[int, int]:
    """Parse a fixed-width ``r || s`` signature."""
    size = curve.coordinate_size
    if len(data) != 2 * size:
        raise InvalidSignature(f"signature must be {2 * size} bytes")
    return (
        int.from_bytes(data[:size], "big"),
        int.from_bytes(data[size:], "big"),
    )
