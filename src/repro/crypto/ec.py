"""NIST P-256 (secp256r1) group arithmetic.

Scalar multiplication uses Jacobian coordinates with a simple
double-and-add ladder; point validation rejects off-curve points and the
identity, which is all the protocol layers above need.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.errors import InvalidPoint


class Point(NamedTuple):
    """An affine curve point; ``None`` coordinates never appear here —
    the point at infinity is represented by Python ``None`` at call sites."""

    x: int
    y: int


class _Curve:
    """Short-Weierstrass curve y^2 = x^3 + ax + b over GF(p)."""

    def __init__(self, name: str, p: int, a: int, b: int,
                 gx: int, gy: int, n: int) -> None:
        self.name = name
        self.p = p
        self.a = a
        self.b = b
        self.generator = Point(gx, gy)
        self.n = n  # group order
        self.coordinate_size = (p.bit_length() + 7) // 8

    # ------------------------------------------------------------- checks

    def contains(self, point: Optional[Point]) -> bool:
        """True if ``point`` is on the curve (infinity counts as on-curve)."""
        if point is None:
            return True
        x, y = point
        if not (0 <= x < self.p and 0 <= y < self.p):
            return False
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def validate_public(self, point: Optional[Point]) -> Point:
        """Validate a public-key point: on-curve, not infinity, right order."""
        if point is None:
            raise InvalidPoint("public key is the point at infinity")
        if not self.contains(point):
            raise InvalidPoint(f"point {point} is not on {self.name}")
        if self.multiply(self.n, point) is not None:
            raise InvalidPoint("point has wrong order")
        return point

    # ------------------------------------------------------- group arithmetic

    def _to_jacobian(self, point: Optional[Point]):
        if point is None:
            return (0, 1, 0)
        return (point.x, point.y, 1)

    def _from_jacobian(self, jac) -> Optional[Point]:
        x, y, z = jac
        if z == 0:
            return None
        p = self.p
        z_inv = pow(z, p - 2, p)
        z2 = z_inv * z_inv % p
        return Point(x * z2 % p, y * z2 * z_inv % p)

    def _jac_double(self, jac):
        x1, y1, z1 = jac
        p = self.p
        if z1 == 0 or y1 == 0:
            return (0, 1, 0)
        ysq = y1 * y1 % p
        s = 4 * x1 * ysq % p
        m = (3 * x1 * x1 + self.a * pow(z1, 4, p)) % p
        x3 = (m * m - 2 * s) % p
        y3 = (m * (s - x3) - 8 * ysq * ysq) % p
        z3 = 2 * y1 * z1 % p
        return (x3, y3, z3)

    def _jac_add(self, jac1, jac2):
        p = self.p
        x1, y1, z1 = jac1
        x2, y2, z2 = jac2
        if z1 == 0:
            return jac2
        if z2 == 0:
            return jac1
        z1z1 = z1 * z1 % p
        z2z2 = z2 * z2 % p
        u1 = x1 * z2z2 % p
        u2 = x2 * z1z1 % p
        s1 = y1 * z2z2 * z2 % p
        s2 = y2 * z1z1 * z1 % p
        if u1 == u2:
            if s1 != s2:
                return (0, 1, 0)  # inverses: P + (-P) = O
            return self._jac_double(jac1)
        h = (u2 - u1) % p
        r = (s2 - s1) % p
        h2 = h * h % p
        h3 = h2 * h % p
        u1h2 = u1 * h2 % p
        x3 = (r * r - h3 - 2 * u1h2) % p
        y3 = (r * (u1h2 - x3) - s1 * h3) % p
        z3 = h * z1 * z2 % p
        return (x3, y3, z3)

    def add(self, p1: Optional[Point], p2: Optional[Point]) -> Optional[Point]:
        """Group addition in affine terms."""
        return self._from_jacobian(
            self._jac_add(self._to_jacobian(p1), self._to_jacobian(p2))
        )

    def double(self, point: Optional[Point]) -> Optional[Point]:
        """Point doubling in affine terms."""
        return self._from_jacobian(self._jac_double(self._to_jacobian(point)))

    def negate(self, point: Optional[Point]) -> Optional[Point]:
        """Additive inverse of a point."""
        if point is None:
            return None
        return Point(point.x, (-point.y) % self.p)

    def multiply(self, k: int, point: Optional[Point]) -> Optional[Point]:
        """Scalar multiplication ``k * point`` (left-to-right ladder)."""
        k %= self.n
        if k == 0 or point is None:
            return None
        acc = (0, 1, 0)
        addend = self._to_jacobian(point)
        while k:
            if k & 1:
                acc = self._jac_add(acc, addend)
            addend = self._jac_double(addend)
            k >>= 1
        return self._from_jacobian(acc)

    def multiply_generator(self, k: int) -> Optional[Point]:
        """``k * G`` for the curve generator G."""
        return self.multiply(k, self.generator)

    # ------------------------------------------------------- serialization

    def encode_point(self, point: Point) -> bytes:
        """Uncompressed SEC1 encoding: ``04 || X || Y``."""
        size = self.coordinate_size
        return b"\x04" + point.x.to_bytes(size, "big") + point.y.to_bytes(size, "big")

    def decode_point(self, data: bytes) -> Point:
        """Parse and validate an uncompressed SEC1 point."""
        size = self.coordinate_size
        if len(data) != 1 + 2 * size or data[0] != 0x04:
            raise InvalidPoint("expected uncompressed SEC1 point")
        point = Point(
            int.from_bytes(data[1:1 + size], "big"),
            int.from_bytes(data[1 + size:], "big"),
        )
        if not self.contains(point):
            raise InvalidPoint("decoded point is not on the curve")
        return point


# NIST P-256 domain parameters (FIPS 186-4, appendix D.1.2.3).
P256 = _Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)
