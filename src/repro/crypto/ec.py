"""NIST P-256 (secp256r1) group arithmetic, with a fast-path engine.

Two layers coexist deliberately:

- **Reference ladder** — :meth:`_Curve.multiply` is the simple left-to-right
  Jacobian double-and-add from the seed implementation.  It is kept byte-
  for-byte unchanged in behaviour and serves as the *oracle* every fast
  path is cross-checked against (``tests/crypto/test_ec_fast.py``).
- **Fast engine** — the hot paths the enrollment pipeline actually runs:

  * :meth:`_Curve.multiply_generator` uses a **fixed-base comb**: radix-16
    window tables over the generator, built once per curve (64 windows of
    15 odd/even multiples each, stored affine so every ladder step is one
    mixed Jacobian+affine addition and there are *no* doublings at all).
  * :meth:`_Curve.multiply_dual` computes ``u1*G + u2*Q`` with
    Shamir/Strauss interleaving over **wNAF** digit expansions — one shared
    doubling ladder instead of two full multiplies plus an add.  The
    generator side reads from a precomputed affine odd-multiples table.
  * :meth:`_Curve.multiply_point` is the single-scalar wNAF ladder used by
    ECDH, where the base point is the peer's (not the generator).
  * :meth:`_Curve.validate_public` is **cofactor-aware**: for a cofactor-1
    curve the full-order ``n * P`` check is mathematically redundant (the
    whole curve has prime order ``n``, so every on-curve point other than
    infinity already has order ``n``) and is skipped; an LRU of already-
    validated points turns repeated validations of the same VM/CA/VNF key
    into one dict hit.  :meth:`_Curve.validate_public_uncached` keeps the
    original full-order check as the reference/oracle path.

Every fast-path invocation, table build and validation-cache hit/miss is
counted in :class:`EcEngineStats` (plain integers — negligible overhead);
:meth:`repro.obs.Telemetry.sync_ec_stats` mirrors the counters into the
metrics registry so they show up on the VM's ``/metrics`` endpoint.  See
``docs/PERFORMANCE.md`` for the design discussion and the E11 benchmark
tables proving the speedups.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, NamedTuple, Optional, Tuple

from repro.analysis.sanitizer import make_lock, make_rlock
from repro.errors import InvalidPoint

#: Window width (bits) of the fixed-base comb used by multiply_generator.
FIXED_BASE_WINDOW = 4

#: wNAF width for the precomputed generator table in multiply_dual.
GENERATOR_WNAF_WIDTH = 8

#: wNAF width for per-call points (the ECDH peer side): the table is
#: built fresh each call, so a narrow window keeps the build cheap.
POINT_WNAF_WIDTH = 5

#: wNAF width for the public-key side of the dual ladder: its tables are
#: cached in a per-point LRU, so a wider window (fewer ladder additions)
#: pays off once a key is seen more than once — which chain validation
#: and per-peer handshakes guarantee.
DUAL_POINT_WNAF_WIDTH = 6

#: Bound on the validated-point LRU (per curve).
VALIDATION_CACHE_CAPACITY = 512

#: Bound on the per-point odd-multiples table LRU (per curve).  Entries
#: are small (2**(POINT_WNAF_WIDTH-2) affine points) and the hit pattern
#: is highly repetitive: chain validation always verifies against the same
#: CA key, and every handshake against a given peer reuses its key.
POINT_TABLE_CACHE_CAPACITY = 128


class Point(NamedTuple):
    """An affine curve point; ``None`` coordinates never appear here —
    the point at infinity is represented by Python ``None`` at call sites."""

    x: int
    y: int


class EcEngineStats:
    """Operation counters for the fast-path engine (one instance per curve).

    Counters are bumped through :meth:`bump`, which holds a private lock:
    a bare ``+= 1`` is a read-modify-write that loses increments when
    concurrent fleet enrollments (:mod:`repro.core.fleet`) hammer the
    engine from many threads.  The lock costs ~100 ns against scalar
    multiplications measured in hundreds of microseconds, so the E11
    speedup gates are unaffected.  The telemetry layer snapshots the
    counters on scrape rather than the crypto layer pushing into a
    registry.
    """

    _COUNTERS = (
        "reference_mults",
        "generator_mults",
        "dual_mults",
        "wnaf_mults",
        "table_builds",
        "validation_cache_hits",
        "validation_cache_misses",
        "order_checks_skipped",
        "point_table_hits",
        "point_table_misses",
    )

    __slots__ = _COUNTERS + ("_lock",)

    def __init__(self) -> None:
        self._lock = make_lock("ec_stats")
        self.reset()

    def bump(self, name: str, amount: int = 1) -> None:
        """Atomically add ``amount`` to the counter called ``name``."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            for name in self._COUNTERS:
                setattr(self, name, 0)

    def snapshot(self) -> dict:
        """Current counters as a plain dict (telemetry sync + tests)."""
        with self._lock:
            return {name: getattr(self, name) for name in self._COUNTERS}


def _wnaf(k: int, width: int) -> List[int]:
    """Width-``width`` non-adjacent form of ``k`` (least significant first).

    Digits are zero or odd in ``[-(2**(width-1) - 1), 2**(width-1) - 1]``;
    at most one in every ``width`` consecutive digits is non-zero, so the
    expected add-count of a wNAF ladder is ``len/(width + 1)``.
    """
    digits: List[int] = []
    modulus = 1 << width
    half = 1 << (width - 1)
    while k:
        if k & 1:
            digit = k & (modulus - 1)
            if digit >= half:
                digit -= modulus
            k -= digit
        else:
            digit = 0
        digits.append(digit)
        k >>= 1
    return digits


class _Curve:
    """Short-Weierstrass curve y^2 = x^3 + ax + b over GF(p)."""

    def __init__(self, name: str, p: int, a: int, b: int,
                 gx: int, gy: int, n: int, h: int = 1) -> None:
        self.name = name
        self.p = p
        self.a = a
        self.b = b
        self.generator = Point(gx, gy)
        self.n = n  # group order
        self.h = h  # cofactor (1 for all NIST prime curves)
        self.coordinate_size = (p.bit_length() + 7) // 8
        self.stats = EcEngineStats()
        # Guards the validated-point LRU, the per-point table LRU and the
        # lazy one-shot table builds below.  RLock because validation may
        # nest inside a locked table build on cofactor>1 curves.  Leaf
        # domain of its own ("ec_curves", not the core "cache" chain):
        # point validation runs under TLS handshakes that the fleet
        # drives while holding per-host leaf locks, and a chain-ranked
        # domain there would (and, before the runtime sanitizer, did)
        # read as a leaf-lock order violation.
        self._lock = make_rlock("ec_curves")
        # Lazily built fast-path tables (once per curve, never mutated).
        self._fixed_base: Optional[List[List[Point]]] = None
        self._generator_odd: Optional[Tuple[List[Point], List[Point]]] = None
        # Scalar split point for the dual ladder (128 for P-256): scalars
        # are split as ``k = k_lo + 2**half_bits * k_hi`` so the shared
        # doubling ladder only runs half the bit length.
        self._half_bits = (n.bit_length() + 1) // 2
        # LRU of already-validated public points: (x, y) -> True.
        self._validated: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self.validation_cache_capacity = VALIDATION_CACHE_CAPACITY
        # LRU of per-point affine odd-multiples table pairs for the dual
        # ladder: (x, y) -> ([1Q, 3Q, ...], [1R, 3R, ...]) with
        # R = 2**half_bits * Q.
        self._point_tables: "OrderedDict[Tuple[int, int], Tuple[List[Point], List[Point]]]" = \
            OrderedDict()
        self.point_table_cache_capacity = POINT_TABLE_CACHE_CAPACITY

    # ------------------------------------------------------------- checks

    def contains(self, point: Optional[Point]) -> bool:
        """True if ``point`` is on the curve (infinity counts as on-curve)."""
        if point is None:
            return True
        x, y = point
        if not (0 <= x < self.p and 0 <= y < self.p):
            return False
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def validate_public(self, point: Optional[Point]) -> Point:
        """Validate a public-key point: on-curve, not infinity, right order.

        Fast path: a bounded LRU remembers already-validated points, so the
        pipeline's repeated verifications against the same CA / VM / VNF
        key cost one dict lookup.  For cofactor-1 curves the full-order
        scalar multiplication is skipped entirely — with ``h == 1`` the
        curve's whole point group has prime order ``n``, so *every*
        on-curve point except infinity has order exactly ``n`` and the
        ``n * P == O`` check can never fail once ``contains`` passed.
        Invalid points are never cached.
        """
        if point is None:
            raise InvalidPoint("public key is the point at infinity")
        key = (point.x, point.y)
        cache = self._validated
        with self._lock:
            if key in cache:
                cache.move_to_end(key)
                self.stats.bump("validation_cache_hits")
                return point
        self.stats.bump("validation_cache_misses")
        if not self.contains(point):
            raise InvalidPoint(f"point {point} is not on {self.name}")
        if self.h == 1:
            self.stats.bump("order_checks_skipped")
        elif self.multiply(self.n, point) is not None:
            raise InvalidPoint("point has wrong order")
        with self._lock:
            cache[key] = True
            if len(cache) > self.validation_cache_capacity:
                cache.popitem(last=False)
        return point

    def validate_public_uncached(self, point: Optional[Point]) -> Point:
        """The original (reference) validation: on-curve, non-infinity and
        an explicit full-order ``n * P == O`` check, with no caching.  Kept
        as the oracle the fast path is cross-checked against."""
        if point is None:
            raise InvalidPoint("public key is the point at infinity")
        if not self.contains(point):
            raise InvalidPoint(f"point {point} is not on {self.name}")
        if self.multiply(self.n, point) is not None:
            raise InvalidPoint("point has wrong order")
        return point

    def reset_validation_cache(self) -> None:
        """Drop every cached validation verdict (tests / key rotation)."""
        with self._lock:
            self._validated.clear()

    def reset_point_tables(self) -> None:
        """Drop every cached odd-multiples table (tests).  Safe at any
        time: tables are pure functions of the point coordinates."""
        with self._lock:
            self._point_tables.clear()

    @property
    def validation_cache_size(self) -> int:
        """Number of points currently remembered as valid."""
        with self._lock:
            return len(self._validated)

    # ------------------------------------------------------- group arithmetic

    def _to_jacobian(self, point: Optional[Point]):
        if point is None:
            return (0, 1, 0)
        return (point.x, point.y, 1)

    def _from_jacobian(self, jac) -> Optional[Point]:
        x, y, z = jac
        if z == 0:
            return None
        p = self.p
        z_inv = pow(z, p - 2, p)
        z2 = z_inv * z_inv % p
        return Point(x * z2 % p, y * z2 * z_inv % p)

    def _from_jacobian_fast(self, jac) -> Optional[Point]:
        """Jacobian→affine using the extended-gcd inverse (``pow(z, -1, p)``).

        CPython computes negative-exponent ``pow`` with a binary extended
        GCD, ~7x faster than the Fermat ``z**(p-2)`` power for 256-bit
        moduli.  Identical output; the reference :meth:`_from_jacobian`
        keeps the Fermat form so the oracle path stays byte-frozen.
        """
        x, y, z = jac
        if z == 0:
            return None
        p = self.p
        z_inv = pow(z, -1, p)
        z2 = z_inv * z_inv % p
        return Point(x * z2 % p, y * z2 * z_inv % p)

    def _jac_double(self, jac):
        x1, y1, z1 = jac
        p = self.p
        if z1 == 0 or y1 == 0:
            return (0, 1, 0)
        ysq = y1 * y1 % p
        s = 4 * x1 * ysq % p
        m = (3 * x1 * x1 + self.a * pow(z1, 4, p)) % p
        x3 = (m * m - 2 * s) % p
        y3 = (m * (s - x3) - 8 * ysq * ysq) % p
        z3 = 2 * y1 * z1 % p
        return (x3, y3, z3)

    def _jac_add(self, jac1, jac2):
        p = self.p
        x1, y1, z1 = jac1
        x2, y2, z2 = jac2
        if z1 == 0:
            return jac2
        if z2 == 0:
            return jac1
        z1z1 = z1 * z1 % p
        z2z2 = z2 * z2 % p
        u1 = x1 * z2z2 % p
        u2 = x2 * z1z1 % p
        s1 = y1 * z2z2 * z2 % p
        s2 = y2 * z1z1 * z1 % p
        if u1 == u2:
            if s1 != s2:
                return (0, 1, 0)  # inverses: P + (-P) = O
            return self._jac_double(jac1)
        h = (u2 - u1) % p
        r = (s2 - s1) % p
        h2 = h * h % p
        h3 = h2 * h % p
        u1h2 = u1 * h2 % p
        x3 = (r * r - h3 - 2 * u1h2) % p
        y3 = (r * (u1h2 - x3) - s1 * h3) % p
        z3 = h * z1 * z2 % p
        return (x3, y3, z3)

    def _jac_add_mixed(self, jac1, x2: int, y2: int):
        """Mixed addition: Jacobian ``jac1`` + affine ``(x2, y2)``.

        The affine operand's ``Z == 1`` removes four field multiplications
        and one squaring versus the general formula — this is why the
        fixed-base tables store affine points.
        """
        x1, y1, z1 = jac1
        if z1 == 0:
            return (x2, y2, 1)
        p = self.p
        z1z1 = z1 * z1 % p
        u2 = x2 * z1z1 % p
        s2 = y2 * z1z1 * z1 % p
        if x1 == u2:
            if y1 != s2:
                return (0, 1, 0)
            return self._jac_double(jac1)
        h = (u2 - x1) % p
        r = (s2 - y1) % p
        h2 = h * h % p
        h3 = h2 * h % p
        u1h2 = x1 * h2 % p
        x3 = (r * r - h3 - 2 * u1h2) % p
        y3 = (r * (u1h2 - x3) - y1 * h3) % p
        z3 = h * z1 % p
        return (x3, y3, z3)

    def add(self, p1: Optional[Point], p2: Optional[Point]) -> Optional[Point]:
        """Group addition in affine terms."""
        return self._from_jacobian(
            self._jac_add(self._to_jacobian(p1), self._to_jacobian(p2))
        )

    def double(self, point: Optional[Point]) -> Optional[Point]:
        """Point doubling in affine terms."""
        return self._from_jacobian(self._jac_double(self._to_jacobian(point)))

    def negate(self, point: Optional[Point]) -> Optional[Point]:
        """Additive inverse of a point."""
        if point is None:
            return None
        return Point(point.x, (-point.y) % self.p)

    def multiply(self, k: int, point: Optional[Point]) -> Optional[Point]:
        """Scalar multiplication ``k * point`` — the **reference ladder**.

        Simple right-to-left double-and-add in Jacobian coordinates.  This
        is deliberately left untouched: it is the oracle the comb / wNAF /
        dual-scalar fast paths are cross-checked against.
        """
        self.stats.bump("reference_mults")
        k %= self.n
        if k == 0 or point is None:
            return None
        acc = (0, 1, 0)
        addend = self._to_jacobian(point)
        while k:
            if k & 1:
                acc = self._jac_add(acc, addend)
            addend = self._jac_double(addend)
            k >>= 1
        return self._from_jacobian(acc)

    # --------------------------------------------------- fast-path tables

    def _fixed_base_table(self) -> List[List[Point]]:
        """``table[i][j-1] = j * 16**i * G`` as affine points.

        Built lazily, once per curve: 64 windows (for a 256-bit order) of
        15 entries each.  With the table in hand, ``k * G`` is at most one
        mixed addition per 4-bit window of ``k`` — no doublings.
        """
        table_ref = self._fixed_base
        if table_ref is None:
            with self._lock:
                if self._fixed_base is None:  # double-checked: build once
                    self.stats.bump("table_builds")
                    windows = (self.n.bit_length() + FIXED_BASE_WINDOW - 1) \
                        // FIXED_BASE_WINDOW
                    table: List[List[Point]] = []
                    base = self._to_jacobian(self.generator)
                    for _ in range(windows):
                        row: List[Point] = []
                        acc = (0, 1, 0)
                        for _ in range((1 << FIXED_BASE_WINDOW) - 1):
                            acc = self._jac_add(acc, base)
                            affine = self._from_jacobian(acc)
                            # j*2^(4i) < n: never infinity
                            assert affine is not None
                            row.append(affine)
                        table.append(row)
                        for _ in range(FIXED_BASE_WINDOW):
                            base = self._jac_double(base)
                    self._fixed_base = table
                table_ref = self._fixed_base
        return table_ref

    def _generator_wnaf_tables(self) -> Tuple[List[Point], List[Point]]:
        """Affine odd-multiples tables for both generator digit streams.

        Returns ``(low, high)`` where ``low[j] = (2j+1) * G`` and
        ``high[j] = (2j+1) * S`` with ``S = 2**half_bits * G`` — the
        shifted base the split-scalar dual ladder uses for the top half
        of ``u1``.  Built once per curve.
        """
        tables_ref = self._generator_odd
        if tables_ref is None:
            with self._lock:
                if self._generator_odd is None:  # double-checked
                    self.stats.bump("table_builds")
                    shifted = self._to_jacobian(self.generator)
                    for _ in range(self._half_bits):
                        shifted = self._jac_double(shifted)
                    count = 1 << (GENERATOR_WNAF_WIDTH - 2)
                    low_jac = self._odd_multiples_jac(
                        self._to_jacobian(self.generator), count)
                    high_jac = self._odd_multiples_jac(shifted, count)
                    affine = self._to_affine_batch(low_jac + high_jac)
                    self._generator_odd = (affine[:count], affine[count:])
                tables_ref = self._generator_odd
        return tables_ref

    def _odd_multiples_jac(self, jac: tuple, count: int) -> List[tuple]:
        """Odd multiples ``[1, 3, 5, ...]`` (``count`` of them) of a
        Jacobian point."""
        twice = self._jac_double(jac)
        table = [jac]
        for _ in range(count - 1):
            table.append(self._jac_add(table[-1], twice))
        return table

    def _to_affine_batch(self, jacs: List[tuple]) -> List[Point]:
        """Convert several Jacobian points to affine with **one** field
        inversion (Montgomery's batch-inversion trick).

        ``k`` inversions cost ``3(k-1)`` multiplications plus a single
        ``pow``; affine table entries then let the dual ladder use mixed
        additions on the public-key side as well.  None of the inputs may
        be the point at infinity (odd multiples of a valid point never
        are).
        """
        p = self.p
        zs = [z for _, _, z in jacs]
        prefix = [1] * (len(zs) + 1)
        for i, z in enumerate(zs):
            prefix[i + 1] = prefix[i] * z % p
        inv_all = pow(prefix[-1], -1, p)
        out: List[Point] = [None] * len(jacs)  # type: ignore[list-item]
        for i in range(len(jacs) - 1, -1, -1):
            x, y, z = jacs[i]
            z_inv = inv_all * prefix[i] % p
            inv_all = inv_all * z % p
            z2 = z_inv * z_inv % p
            out[i] = Point(x * z2 % p, y * z2 * z_inv % p)
        return out

    def _point_odd_table(self, point: Point) -> Tuple[List[Point], List[Point]]:
        """Affine odd-multiples tables for ``point`` from the per-point LRU.

        Returns ``(low, high)`` with ``low[j] = (2j+1) * Q`` and
        ``high[j] = (2j+1) * R`` for ``R = 2**half_bits * Q``.  Building
        the pair costs ~128 doublings plus ~30 additions and one batch
        inversion — but chain validation verifies every certificate
        against the same CA key and each TLS peer reuses its key across
        handshakes, so the build amortises to a dict hit on the common
        path.
        """
        key = (point.x, point.y)
        cache = self._point_tables
        with self._lock:
            tables = cache.get(key)
            if tables is not None:
                cache.move_to_end(key)
                self.stats.bump("point_table_hits")
                return tables
        # Build outside the lock: ~128 doublings plus a batch inversion.
        # Two threads racing on the same new key both build; the second
        # insert wins and the tables are identical (pure function of the
        # point), so the duplicate work is bounded and harmless.
        self.stats.bump("point_table_misses")
        base = self._to_jacobian(point)
        shifted = base
        for _ in range(self._half_bits):
            shifted = self._jac_double(shifted)
        count = 1 << (DUAL_POINT_WNAF_WIDTH - 2)
        low_jac = self._odd_multiples_jac(base, count)
        high_jac = self._odd_multiples_jac(shifted, count)
        affine = self._to_affine_batch(low_jac + high_jac)
        tables = (affine[:count], affine[count:])
        with self._lock:
            cache[key] = tables
            if len(cache) > self.point_table_cache_capacity:
                cache.popitem(last=False)
        return tables

    # ------------------------------------------------------- fast multiplies

    def multiply_generator(self, k: int) -> Optional[Point]:
        """``k * G`` via the fixed-base comb (reference: ``multiply(k, G)``).

        One mixed addition per non-zero radix-16 window of ``k`` — roughly
        64 cheap additions instead of ~256 doublings plus ~128 additions.
        """
        self.stats.bump("generator_mults")
        k %= self.n
        if k == 0:
            return None
        table = self._fixed_base_table()
        acc = (0, 1, 0)
        index = 0
        mask = (1 << FIXED_BASE_WINDOW) - 1
        while k:
            digit = k & mask
            if digit:
                entry = table[index][digit - 1]
                acc = self._jac_add_mixed(acc, entry.x, entry.y)
            k >>= FIXED_BASE_WINDOW
            index += 1
        return self._from_jacobian_fast(acc)

    def multiply_point(self, k: int, point: Optional[Point],
                       width: int = POINT_WNAF_WIDTH) -> Optional[Point]:
        """Single-scalar wNAF ladder for arbitrary base points (ECDH).

        Same result as :meth:`multiply`, ~2.5x fewer additions: the wNAF
        digit density is ``1/(width+1)`` against the plain ladder's 1/2.
        """
        self.stats.bump("wnaf_mults")
        k %= self.n
        if k == 0 or point is None:
            return None
        digits = _wnaf(k, width)
        table = self._odd_multiples_jac(
            self._to_jacobian(point), 1 << (width - 2))
        p = self.p
        acc = (0, 1, 0)
        for digit in reversed(digits):
            acc = self._jac_double(acc)
            if digit:
                if digit > 0:
                    acc = self._jac_add(acc, table[digit >> 1])
                else:
                    x, y, z = table[(-digit) >> 1]
                    acc = self._jac_add(acc, (x, (-y) % p, z))
        return self._from_jacobian_fast(acc)

    def multiply_dual(self, u1: int, u2: int,
                      point: Optional[Point]) -> Optional[Point]:
        """``u1 * G + u2 * point`` in one split-scalar Strauss wNAF ladder.

        Both scalars are split at ``half_bits`` (128 for P-256) as
        ``u = u_lo + 2**half_bits * u_hi``, giving *four* wNAF digit
        streams over the precomputed bases ``G``, ``S = 2**half_bits * G``,
        ``Q`` and ``R = 2**half_bits * Q``.  The shared doubling ladder
        then only runs ~128 steps instead of ~256 — doublings dominate the
        cost, so halving them nearly halves the whole verification
        equation.  All four streams read *affine* odd-multiples tables
        (the generator pair precomputed once per curve; the point pair
        cached per public key in an LRU), so every addition is the cheap
        mixed Jacobian+affine form.  For curves with ``a = -3`` (every
        NIST prime curve, including P-256) the doubling body is inlined
        using the dedicated ``a = -3`` formula, which avoids per-step
        function-call overhead and the ``z^4`` power; the generic
        ``_jac_double`` remains the fallback.
        """
        self.stats.bump("dual_mults")
        u1 %= self.n
        u2 %= self.n
        if point is None or u2 == 0:
            return self.multiply_generator(u1) if u1 else None
        if u1 == 0:
            return self.multiply_point(u2, point)
        half = self._half_bits
        half_mask = (1 << half) - 1
        g_lo_table, g_hi_table = self._generator_wnaf_tables()
        q_lo_table, q_hi_table = self._point_odd_table(point)
        streams = (
            (_wnaf(u1 & half_mask, GENERATOR_WNAF_WIDTH), g_lo_table),
            (_wnaf(u1 >> half, GENERATOR_WNAF_WIDTH), g_hi_table),
            (_wnaf(u2 & half_mask, DUAL_POINT_WNAF_WIDTH), q_lo_table),
            (_wnaf(u2 >> half, DUAL_POINT_WNAF_WIDTH), q_hi_table),
        )
        p = self.p
        a_is_minus3 = self.a == p - 3
        length = max(len(digits) for digits, _ in streams)
        # Merge the four digit streams into one sparse map of pending
        # affine addends per ladder step (~65 of the ~128 steps carry
        # one or more).  Merging up front lets the ladder below inline
        # both the doubling and the mixed-addition field formulas with no
        # per-step method calls or digit bookkeeping.
        steps: dict = {}
        for digits, table in streams:
            for i, digit in enumerate(digits):
                if digit > 0:
                    entry = table[digit >> 1]
                elif digit < 0:
                    entry = table[(-digit) >> 1]
                    entry = (entry.x, (-entry.y) % p)
                else:
                    continue
                if i in steps:
                    steps[i].append(entry)
                else:
                    steps[i] = [entry]
        x1, y1, z1 = 0, 1, 0
        empty: tuple = ()
        steps_get = steps.get
        for i in range(length - 1, -1, -1):
            # -- double (inlined dbl-2001-b for a = -3; generic fallback)
            if z1:
                if y1 == 0:
                    x1, y1, z1 = 0, 1, 0
                elif a_is_minus3:
                    delta = z1 * z1 % p
                    gamma = y1 * y1 % p
                    beta = x1 * gamma % p
                    alpha = 3 * (x1 - delta) * (x1 + delta) % p
                    x3 = (alpha * alpha - (beta << 3)) % p
                    t = y1 + z1
                    z1 = (t * t - gamma - delta) % p
                    gg = gamma * gamma
                    y1 = (alpha * ((beta << 2) - x3) - (gg << 3)) % p
                    x1 = x3
                else:
                    x1, y1, z1 = self._jac_double((x1, y1, z1))
            for x2, y2 in steps_get(i, empty):
                # -- inlined mixed Jacobian+affine addition (madd-2004-hmv)
                if z1 == 0:
                    x1, y1, z1 = x2, y2, 1
                    continue
                z1z1 = z1 * z1 % p
                u2_ = x2 * z1z1 % p
                s2 = y2 * z1z1 * z1 % p
                if x1 == u2_:
                    if y1 != s2:
                        x1, y1, z1 = 0, 1, 0
                    else:
                        x1, y1, z1 = self._jac_double((x1, y1, z1))
                    continue
                h = (u2_ - x1) % p
                r = (s2 - y1) % p
                h2 = h * h % p
                h3 = h2 * h % p
                u1h2 = x1 * h2 % p
                x3 = (r * r - h3 - (u1h2 << 1)) % p
                y1 = (r * (u1h2 - x3) - y1 * h3) % p
                z1 = h * z1 % p
                x1 = x3
        return self._from_jacobian_fast((x1, y1, z1))

    def multiply_dual_reference(self, u1: int, u2: int,
                                point: Optional[Point]) -> Optional[Point]:
        """Oracle for :meth:`multiply_dual`: two reference ladders + add."""
        return self.add(
            self.multiply(u1, self.generator), self.multiply(u2, point)
        )

    # ------------------------------------------------------- serialization

    def encode_point(self, point: Point) -> bytes:
        """Uncompressed SEC1 encoding: ``04 || X || Y``."""
        size = self.coordinate_size
        return b"\x04" + point.x.to_bytes(size, "big") + point.y.to_bytes(size, "big")

    def decode_point(self, data: bytes, validate: bool = True) -> Point:
        """Parse an uncompressed SEC1 point.

        With ``validate=True`` (the default, and the seed behaviour) the
        decoded point is checked to lie on the curve.  Callers that feed
        the result straight into :meth:`validate_public` — e.g.
        :meth:`repro.crypto.keys.EcPublicKey.from_bytes` — pass
        ``validate=False`` so the point is checked exactly once instead of
        twice; the *combined* path never returns an unvalidated point.
        """
        size = self.coordinate_size
        if len(data) != 1 + 2 * size or data[0] != 0x04:
            raise InvalidPoint("expected uncompressed SEC1 point")
        point = Point(
            int.from_bytes(data[1:1 + size], "big"),
            int.from_bytes(data[1 + size:], "big"),
        )
        if validate and not self.contains(point):
            raise InvalidPoint("decoded point is not on the curve")
        return point


# NIST P-256 domain parameters (FIPS 186-4, appendix D.1.2.3).
P256 = _Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    h=1,
)
