"""AES-GCM authenticated encryption (NIST SP 800-38D).

GHASH uses per-byte-position multiplication tables precomputed from the hash
subkey (16 positions x 256 entries), reducing each GF(2^128) multiplication
to 16 table lookups and XORs — the standard software strategy, and fast
enough in pure Python for the TLS record benchmarks.
"""

from __future__ import annotations

import struct

from repro.crypto.aes import AES
from repro.crypto.constant_time import ct_bytes_eq
from repro.errors import CryptoError, InvalidTag

TAG_SIZE = 16
NONCE_SIZE = 12

_R = 0xE1 << 120  # the GCM reduction polynomial in the reflected convention


def _double(x: int) -> int:
    """Multiply a field element by x in GCM's reflected representation."""
    if x & 1:
        return (x >> 1) ^ _R
    return x >> 1


class _Ghash:
    """GHASH over GF(2^128), keyed by the hash subkey H.

    The spec's bitwise algorithm pairs the i-th bit of the input block
    (most-significant-first) with H*x^i.  In the big-endian integer view,
    integer bit position p therefore pairs with H*x^(127-p); the tables
    below aggregate those products per byte of the input block.
    """

    def __init__(self, h: bytes) -> None:
        h_int = int.from_bytes(h, "big")
        # powers[p] = H * x^(127-p) for integer bit position p (0 = LSB).
        powers = [0] * 128
        powers[127] = h_int
        for p in range(126, -1, -1):
            powers[p] = _double(powers[p + 1])
        # tables[b][v]: contribution of byte value v at byte index b
        # (b = 0 is the most significant byte of the block).
        tables = []
        for b in range(16):
            base = 8 * (15 - b)
            table = [0] * 256
            for v in range(1, 256):
                low = v & -v
                table[v] = table[v ^ low] ^ powers[base + low.bit_length() - 1]
            tables.append(table)
        self._tables = tables

    def mul_h(self, x: int) -> int:
        """Multiply field element ``x`` by the hash subkey H."""
        xb = x.to_bytes(16, "big")
        tables = self._tables
        z = 0
        for b in range(16):
            z ^= tables[b][xb[b]]
        return z

    def __call__(self, data: bytes) -> int:
        """GHASH of ``data``, which must be a multiple of 16 bytes."""
        y = 0
        mul = self.mul_h
        for i in range(0, len(data), 16):
            y = mul(y ^ int.from_bytes(data[i:i + 16], "big"))
        return y


def _pad16(data: bytes) -> bytes:
    """Zero-pad to a multiple of the block size."""
    rem = len(data) % 16
    return data if rem == 0 else data + b"\x00" * (16 - rem)


class AesGcm:
    """AES-GCM with a 16/24/32-byte key and 12-byte nonces.

    Example:
        >>> aead = AesGcm(bytes(16))
        >>> ct = aead.encrypt(bytes(12), b"hello", b"aad")
        >>> aead.decrypt(bytes(12), ct, b"aad")
        b'hello'
    """

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        self._ghash = _Ghash(self._aes.encrypt_block(b"\x00" * 16))

    def _keystream(self, nonce: bytes, n_blocks: int, start_counter: int) -> bytes:
        """CTR keystream: AES(nonce || counter) for consecutive counters."""
        enc = self._aes.encrypt_block
        parts = []
        for i in range(n_blocks):
            parts.append(enc(nonce + struct.pack(">I", start_counter + i)))
        return b"".join(parts)

    def _auth_tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        ghash_input = (
            _pad16(aad)
            + _pad16(ciphertext)
            + struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8)
        )
        s = self._ghash(ghash_input)
        ek_y0 = self._aes.encrypt_block(nonce + struct.pack(">I", 1))
        return (s ^ int.from_bytes(ek_y0, "big")).to_bytes(16, "big")

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ``ciphertext || tag``."""
        if len(nonce) != NONCE_SIZE:
            raise CryptoError(f"GCM nonce must be {NONCE_SIZE} bytes")
        n_blocks = (len(plaintext) + 15) // 16
        stream = self._keystream(nonce, n_blocks, start_counter=2)
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        return ciphertext + self._auth_tag(nonce, ciphertext, aad)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raises :class:`InvalidTag` on failure."""
        if len(nonce) != NONCE_SIZE:
            raise CryptoError(f"GCM nonce must be {NONCE_SIZE} bytes")
        if len(data) < TAG_SIZE:
            raise InvalidTag("ciphertext shorter than the GCM tag")
        ciphertext, tag = data[:-TAG_SIZE], data[-TAG_SIZE:]
        expected = self._auth_tag(nonce, ciphertext, aad)
        if not ct_bytes_eq(expected, tag):
            raise InvalidTag("GCM tag verification failed")
        n_blocks = (len(ciphertext) + 15) // 16
        stream = self._keystream(nonce, n_blocks, start_counter=2)
        return bytes(c ^ s for c, s in zip(ciphertext, stream))
