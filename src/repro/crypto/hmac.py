"""HMAC-SHA256 (FIPS 198-1 / RFC 2104), built on :mod:`repro.crypto.sha256`."""

from __future__ import annotations

from repro.crypto.constant_time import ct_bytes_eq
from repro.crypto.sha256 import SHA256, BLOCK_SIZE, DIGEST_SIZE


class HmacSha256:
    """Incremental HMAC-SHA256.

    Args:
        key: MAC key of any length; keys longer than the block size are
            hashed first, per the HMAC definition.
    """

    digest_size = DIGEST_SIZE

    def __init__(self, key: bytes, data: bytes = b"") -> None:
        if len(key) > BLOCK_SIZE:
            key = SHA256(key).digest()
        key = key.ljust(BLOCK_SIZE, b"\x00")
        self._outer_key = bytes(b ^ 0x5C for b in key)
        self._inner = SHA256(bytes(b ^ 0x36 for b in key))
        if data:
            self._inner.update(data)

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._inner.update(data)

    def digest(self) -> bytes:
        """The 32-byte MAC over everything absorbed so far."""
        outer = SHA256(self._outer_key)
        outer.update(self._inner.digest())
        return outer.digest()

    def hexdigest(self) -> str:
        """MAC as lowercase hex."""
        return self.digest().hex()

    def copy(self) -> "HmacSha256":
        """Independent copy of the running MAC state."""
        clone = HmacSha256.__new__(HmacSha256)
        clone._outer_key = self._outer_key
        clone._inner = self._inner.copy()
        return clone

    def verify(self, tag: bytes) -> bool:
        """Constant-time comparison of ``tag`` against the computed MAC."""
        return ct_bytes_eq(self.digest(), tag)


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """One-shot HMAC-SHA256."""
    return HmacSha256(key, data).digest()
