"""HMAC-DRBG (NIST SP 800-90A) and the library's randomness policy.

Every component that needs randomness takes an explicit RNG argument; the
default is a process-wide HMAC-DRBG seeded from ``os.urandom``.  Simulations
and tests construct their own DRBG from a fixed seed, which makes entire
end-to-end runs bit-reproducible — a property the benchmark harness relies
on.
"""

from __future__ import annotations

import os

from repro.analysis.sanitizer import make_lock
from repro.crypto.hmac import hmac_sha256
from repro.errors import EntropyError

_RESEED_INTERVAL = 1 << 32


class HmacDrbg:
    """Deterministic random bit generator per SP 800-90A (HMAC variant).

    Args:
        seed: entropy input; any length (tests use short fixed strings).
        personalization: optional domain-separation string.
    """

    def __init__(self, seed: bytes, personalization: bytes = b"") -> None:
        if not seed:
            raise EntropyError("HMAC-DRBG requires a non-empty seed")
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._reseed_counter = 1
        self._lock = make_lock("rng")
        self._update(seed + personalization)

    def _update(self, provided: bytes) -> None:
        self._key = hmac_sha256(self._key, self._value + b"\x00" + provided)
        self._value = hmac_sha256(self._key, self._value)
        if provided:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + provided)
            self._value = hmac_sha256(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the generator state."""
        if not entropy:
            raise EntropyError("reseed requires non-empty entropy")
        with self._lock:
            self._update(entropy)
            self._reseed_counter = 1

    def random_bytes(self, length: int) -> bytes:
        """Generate ``length`` pseudorandom bytes."""
        if length < 0:
            raise EntropyError("negative length")
        with self._lock:
            if self._reseed_counter > _RESEED_INTERVAL:
                raise EntropyError("DRBG reseed interval exceeded")
            out = b""
            while len(out) < length:
                self._value = hmac_sha256(self._key, self._value)
                out += self._value
            self._update(b"")
            self._reseed_counter += 1
        return out[:length]

    def random_int(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)`` via rejection sampling."""
        if upper <= 0:
            raise EntropyError("upper bound must be positive")
        n_bytes = (upper.bit_length() + 7) // 8
        while True:
            candidate = int.from_bytes(self.random_bytes(n_bytes), "big")
            # Trim excess high bits, then reject out-of-range values.
            candidate >>= max(0, n_bytes * 8 - upper.bit_length())
            if candidate < upper:
                return candidate

    def random_scalar(self, order: int) -> int:
        """Uniform integer in ``[1, order)`` — an EC private scalar."""
        return 1 + self.random_int(order - 1)


_default_rng = None
_default_lock = make_lock("rng")


def default_rng() -> HmacDrbg:
    """Process-wide DRBG, lazily seeded from the OS entropy pool."""
    global _default_rng
    with _default_lock:
        if _default_rng is None:
            _default_rng = HmacDrbg(os.urandom(48), b"repro-default-rng")
        return _default_rng


def set_default_rng(rng: HmacDrbg) -> None:
    """Replace the process-wide DRBG (used by deterministic simulations)."""
    global _default_rng
    with _default_lock:
        _default_rng = rng
