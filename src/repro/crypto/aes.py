"""The AES block cipher (FIPS 197) for 128/192/256-bit keys.

The S-box is *derived* at import time from the GF(2^8) inverse and affine
transform rather than pasted in as constants, and encryption/decryption use
the standard 32-bit T-table formulation — the fastest approach available to
pure Python and the same structure used by mbedTLS, the library the paper's
prototype embeds in its enclaves.

Only the raw block transform lives here; modes of operation are in
:mod:`repro.crypto.gcm`.
"""

from __future__ import annotations

import struct

from repro.errors import InvalidKey

BLOCK_SIZE = 16


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
        b >>= 1
    return result


def _build_sbox() -> tuple:
    """Compute the AES S-box from first principles."""
    # Multiplicative inverses via exp/log tables over generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]

    def inverse(v: int) -> int:
        return 0 if v == 0 else exp[255 - log[v]]

    sbox = [0] * 256
    for i in range(256):
        q = inverse(i)
        # Affine transform: bit-rotated XOR of the inverse plus 0x63.
        s = q
        for shift in (1, 2, 3, 4):
            s ^= ((q << shift) | (q >> (8 - shift))) & 0xFF
        sbox[i] = s ^ 0x63
    inv = [0] * 256
    for i, s in enumerate(sbox):
        inv[s] = i
    return tuple(sbox), tuple(inv)


SBOX, INV_SBOX = _build_sbox()


def _build_tables() -> tuple:
    """Precompute the encryption and decryption T-tables."""
    t0, t1, t2, t3 = [], [], [], []
    d0, d1, d2, d3 = [], [], [], []
    for i in range(256):
        s = SBOX[i]
        # MixColumns column for SubBytes output s: (2s, s, s, 3s).
        word = (
            (_gf_mul(s, 2) << 24) | (s << 16) | (s << 8) | _gf_mul(s, 3)
        )
        t0.append(word)
        t1.append(((word >> 8) | (word << 24)) & 0xFFFFFFFF)
        t2.append(((word >> 16) | (word << 16)) & 0xFFFFFFFF)
        t3.append(((word >> 24) | (word << 8)) & 0xFFFFFFFF)

        si = INV_SBOX[i]
        # InvMixColumns column: (14si, 9si, 13si, 11si).
        dword = (
            (_gf_mul(si, 14) << 24)
            | (_gf_mul(si, 9) << 16)
            | (_gf_mul(si, 13) << 8)
            | _gf_mul(si, 11)
        )
        d0.append(dword)
        d1.append(((dword >> 8) | (dword << 24)) & 0xFFFFFFFF)
        d2.append(((dword >> 16) | (dword << 16)) & 0xFFFFFFFF)
        d3.append(((dword >> 24) | (dword << 8)) & 0xFFFFFFFF)
    return (
        tuple(t0), tuple(t1), tuple(t2), tuple(t3),
        tuple(d0), tuple(d1), tuple(d2), tuple(d3),
    )


_T0, _T1, _T2, _T3, _D0, _D1, _D2, _D3 = _build_tables()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8)


class AES:
    """AES with a 16/24/32-byte key.

    Example:
        >>> cipher = AES(bytes(16))
        >>> len(cipher.encrypt_block(bytes(16)))
        16
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise InvalidKey(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        self._dec_round_keys = self._expand_decrypt_keys()

    @staticmethod
    def _expand_key(key: bytes) -> list:
        """FIPS 197 key schedule: one 32-bit word per schedule slot."""
        nk = len(key) // 4
        words = list(struct.unpack(f">{nk}I", key))
        total = 4 * ({4: 10, 6: 12, 8: 14}[nk] + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def _expand_decrypt_keys(self) -> list:
        """Equivalent-inverse-cipher round keys (InvMixColumns applied)."""
        rk = self._round_keys
        n = self.rounds
        out = []
        for rnd in range(n + 1):
            src = rk[4 * (n - rnd): 4 * (n - rnd) + 4]
            if rnd in (0, n):
                out.extend(src)
            else:
                for word in src:
                    out.append(
                        _D0[SBOX[(word >> 24) & 0xFF]]
                        ^ _D1[SBOX[(word >> 16) & 0xFF]]
                        ^ _D2[SBOX[(word >> 8) & 0xFF]]
                        ^ _D3[SBOX[word & 0xFF]]
                    )
        return out

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidKey(f"AES block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        for rnd in range(1, self.rounds):
            k = 4 * rnd
            n0 = (t0[(s0 >> 24) & 0xFF] ^ t1[(s1 >> 16) & 0xFF]
                  ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[k])
            n1 = (t0[(s1 >> 24) & 0xFF] ^ t1[(s2 >> 16) & 0xFF]
                  ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[k + 1])
            n2 = (t0[(s2 >> 24) & 0xFF] ^ t1[(s3 >> 16) & 0xFF]
                  ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[k + 2])
            n3 = (t0[(s3 >> 24) & 0xFF] ^ t1[(s0 >> 16) & 0xFF]
                  ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = n0, n1, n2, n3
        k = 4 * self.rounds
        sbox = SBOX
        o0 = ((sbox[(s0 >> 24) & 0xFF] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[k]
        o1 = ((sbox[(s1 >> 24) & 0xFF] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[k + 1]
        o2 = ((sbox[(s2 >> 24) & 0xFF] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[k + 2]
        o3 = ((sbox[(s3 >> 24) & 0xFF] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[k + 3]
        return struct.pack(">4I", o0 & 0xFFFFFFFF, o1 & 0xFFFFFFFF,
                           o2 & 0xFFFFFFFF, o3 & 0xFFFFFFFF)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidKey(f"AES block must be 16 bytes, got {len(block)}")
        rk = self._dec_round_keys
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        d0, d1, d2, d3 = _D0, _D1, _D2, _D3
        for rnd in range(1, self.rounds):
            k = 4 * rnd
            n0 = (d0[(s0 >> 24) & 0xFF] ^ d1[(s3 >> 16) & 0xFF]
                  ^ d2[(s2 >> 8) & 0xFF] ^ d3[s1 & 0xFF] ^ rk[k])
            n1 = (d0[(s1 >> 24) & 0xFF] ^ d1[(s0 >> 16) & 0xFF]
                  ^ d2[(s3 >> 8) & 0xFF] ^ d3[s2 & 0xFF] ^ rk[k + 1])
            n2 = (d0[(s2 >> 24) & 0xFF] ^ d1[(s1 >> 16) & 0xFF]
                  ^ d2[(s0 >> 8) & 0xFF] ^ d3[s3 & 0xFF] ^ rk[k + 2])
            n3 = (d0[(s3 >> 24) & 0xFF] ^ d1[(s2 >> 16) & 0xFF]
                  ^ d2[(s1 >> 8) & 0xFF] ^ d3[s0 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = n0, n1, n2, n3
        k = 4 * self.rounds
        inv = INV_SBOX
        o0 = ((inv[(s0 >> 24) & 0xFF] << 24) | (inv[(s3 >> 16) & 0xFF] << 16)
              | (inv[(s2 >> 8) & 0xFF] << 8) | inv[s1 & 0xFF]) ^ rk[k]
        o1 = ((inv[(s1 >> 24) & 0xFF] << 24) | (inv[(s0 >> 16) & 0xFF] << 16)
              | (inv[(s3 >> 8) & 0xFF] << 8) | inv[s2 & 0xFF]) ^ rk[k + 1]
        o2 = ((inv[(s2 >> 24) & 0xFF] << 24) | (inv[(s1 >> 16) & 0xFF] << 16)
              | (inv[(s0 >> 8) & 0xFF] << 8) | inv[s3 & 0xFF]) ^ rk[k + 2]
        o3 = ((inv[(s3 >> 24) & 0xFF] << 24) | (inv[(s2 >> 16) & 0xFF] << 16)
              | (inv[(s1 >> 8) & 0xFF] << 8) | inv[s0 & 0xFF]) ^ rk[k + 3]
        return struct.pack(">4I", o0 & 0xFFFFFFFF, o1 & 0xFFFFFFFF,
                           o2 & 0xFFFFFFFF, o3 & 0xFFFFFFFF)
