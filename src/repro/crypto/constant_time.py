"""Constant-time comparison helpers.

Python cannot give true constant-time guarantees, but these helpers avoid the
*data-dependent early exit* of ``==`` on bytes, which is the property the
protocol code relies on (MAC and tag comparison).  They also serve as the
single audited place where secret comparisons happen.
"""

from __future__ import annotations


def ct_bytes_eq(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without a data-dependent early exit.

    Returns ``False`` for length mismatches (length is not secret in any of
    our protocols: MACs and tags have fixed sizes).
    """
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0


def ct_select(cond: bool, when_true: int, when_false: int) -> int:
    """Branch-free select between two integers based on ``cond``."""
    mask = -int(bool(cond))  # 0 or -1 (all ones)
    return (when_true & mask) | (when_false & ~mask)
