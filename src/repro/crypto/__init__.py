"""From-scratch cryptographic primitives used by every protocol in the library.

The subpackage provides:

- :mod:`repro.crypto.sha256` — SHA-256 (pure-Python implementation, with an
  optional ``hashlib`` fast path selected by default).
- :mod:`repro.crypto.hmac` — HMAC-SHA256.
- :mod:`repro.crypto.hkdf` — HKDF extract/expand (RFC 5869).
- :mod:`repro.crypto.aes` — the AES block cipher (128/192/256-bit keys).
- :mod:`repro.crypto.gcm` — AES-GCM AEAD (NIST SP 800-38D).
- :mod:`repro.crypto.ec` — NIST P-256 group arithmetic.
- :mod:`repro.crypto.ecdsa` — ECDSA with RFC 6979 deterministic nonces.
- :mod:`repro.crypto.ecdh` — ECDH shared-secret derivation.
- :mod:`repro.crypto.rng` — HMAC-DRBG (NIST SP 800-90A), seedable for
  deterministic simulation runs.
- :mod:`repro.crypto.keys` — key-pair objects with serialization.

Nothing here shells out to OpenSSL; ``hashlib`` is used only as an optional
accelerator for the SHA-256 compression function, and the pure implementation
is pinned to the same FIPS 180-4 vectors in the test suite.
"""

from repro.crypto.sha256 import sha256, SHA256
from repro.crypto.hmac import hmac_sha256, HmacSha256
from repro.crypto.hkdf import hkdf, hkdf_extract, hkdf_expand
from repro.crypto.aes import AES
from repro.crypto.gcm import AesGcm
from repro.crypto.ec import EcEngineStats, P256
from repro.crypto.ecdsa import ecdsa_sign, ecdsa_verify, ecdsa_verify_reference
from repro.crypto.ecdh import ecdh_shared_secret
from repro.crypto.rng import HmacDrbg, default_rng
from repro.crypto.keys import EcPrivateKey, EcPublicKey, generate_keypair

__all__ = [
    "sha256",
    "SHA256",
    "hmac_sha256",
    "HmacSha256",
    "hkdf",
    "hkdf_extract",
    "hkdf_expand",
    "AES",
    "AesGcm",
    "P256",
    "EcEngineStats",
    "ecdsa_sign",
    "ecdsa_verify",
    "ecdsa_verify_reference",
    "ecdh_shared_secret",
    "HmacDrbg",
    "default_rng",
    "EcPrivateKey",
    "EcPublicKey",
    "generate_keypair",
]
