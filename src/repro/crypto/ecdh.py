"""ECDH shared-secret derivation over P-256 (used by the TLS key exchange)."""

from __future__ import annotations

from repro.crypto.ec import P256, Point, _Curve
from repro.errors import CryptoError, InvalidKey


def ecdh_shared_secret(private_key: int, peer_public: Point,
                       curve: _Curve = P256) -> bytes:
    """Compute the X coordinate of ``private_key * peer_public``.

    The peer's point is validated before use (off-curve / small-order points
    are rejected), which is the textbook invalid-curve-attack defence.
    Validation hits the curve's LRU when the same peer key recurs (every
    resumed-then-renegotiated TLS peer, the VM's delivery key, ...), and
    the scalar multiplication runs on the wNAF ladder
    (:meth:`~repro.crypto.ec._Curve.multiply_point`) — same bytes as the
    reference ladder, ~2.5x fewer group additions.
    """
    if not 1 <= private_key < curve.n:
        raise InvalidKey("private scalar out of range")
    curve.validate_public(peer_public)
    shared = curve.multiply_point(private_key, peer_public)
    if shared is None:
        raise CryptoError("ECDH produced the point at infinity")
    return shared.x.to_bytes(curve.coordinate_size, "big")
