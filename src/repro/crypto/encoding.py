"""Byte/integer/text encoding helpers shared across the library.

These are deliberately small, explicit functions: every protocol module that
serializes integers or key material goes through here, which keeps endianness
and padding rules in one place.
"""

from __future__ import annotations

from repro.errors import EncodingError

_B64_ALPHABET = (
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
)
_B64_REVERSE = {c: i for i, c in enumerate(_B64_ALPHABET)}


def int_to_bytes(value: int, length: int) -> bytes:
    """Encode a non-negative integer big-endian into exactly ``length`` bytes."""
    if value < 0:
        raise EncodingError("cannot encode negative integer")
    try:
        return value.to_bytes(length, "big")
    except OverflowError as exc:
        raise EncodingError(f"{value} does not fit in {length} bytes") from exc


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into a non-negative integer."""
    return int.from_bytes(data, "big")


def int_to_min_bytes(value: int) -> bytes:
    """Encode a non-negative integer big-endian with no leading zero bytes."""
    if value < 0:
        raise EncodingError("cannot encode negative integer")
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def hex_encode(data: bytes) -> str:
    """Lower-case hex representation of ``data``."""
    return data.hex()


def hex_decode(text: str) -> bytes:
    """Decode a hex string, raising :class:`EncodingError` on malformed input."""
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise EncodingError(f"invalid hex: {text!r}") from exc


def b64_encode(data: bytes) -> str:
    """Standard base64 encoding, implemented here for self-containment."""
    out = []
    for i in range(0, len(data) - len(data) % 3, 3):
        n = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2]
        out.append(_B64_ALPHABET[(n >> 18) & 63])
        out.append(_B64_ALPHABET[(n >> 12) & 63])
        out.append(_B64_ALPHABET[(n >> 6) & 63])
        out.append(_B64_ALPHABET[n & 63])
    rem = len(data) % 3
    if rem == 1:
        n = data[-1] << 16
        out.append(_B64_ALPHABET[(n >> 18) & 63])
        out.append(_B64_ALPHABET[(n >> 12) & 63])
        out.append("==")
    elif rem == 2:
        n = (data[-2] << 16) | (data[-1] << 8)
        out.append(_B64_ALPHABET[(n >> 18) & 63])
        out.append(_B64_ALPHABET[(n >> 12) & 63])
        out.append(_B64_ALPHABET[(n >> 6) & 63])
        out.append("=")
    return "".join(out)


def b64_decode(text: str) -> bytes:
    """Decode standard base64, raising :class:`EncodingError` on bad input."""
    if len(text) % 4 != 0:
        raise EncodingError("base64 length not a multiple of 4")
    padding = 0
    if text.endswith("=="):
        padding = 2
    elif text.endswith("="):
        padding = 1
    body = text[: len(text) - padding] if padding else text
    out = bytearray()
    try:
        values = [_B64_REVERSE[c] for c in body]
    except KeyError as exc:
        raise EncodingError(f"invalid base64 character: {exc.args[0]!r}") from exc
    for i in range(0, len(values) - len(values) % 4, 4):
        n = (values[i] << 18) | (values[i + 1] << 12) | (values[i + 2] << 6) | values[i + 3]
        out += bytes(((n >> 16) & 255, (n >> 8) & 255, n & 255))
    rem = len(values) % 4
    if rem == 2:
        n = (values[-2] << 18) | (values[-1] << 12)
        out.append((n >> 16) & 255)
    elif rem == 3:
        n = (values[-3] << 18) | (values[-2] << 12) | (values[-1] << 6)
        out.append((n >> 16) & 255)
        out.append((n >> 8) & 255)
    elif rem == 1:
        raise EncodingError("truncated base64")
    return bytes(out)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise EncodingError("xor_bytes length mismatch")
    return bytes(x ^ y for x, y in zip(a, b))
