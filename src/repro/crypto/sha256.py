"""SHA-256 (FIPS 180-4).

Two interchangeable backends are provided:

- ``"pure"`` — the full compression function implemented below, used by the
  known-answer tests and available for environments where auditability of
  every instruction matters.
- ``"hashlib"`` — the interpreter's built-in implementation, used by default
  because protocol benchmarks hash megabytes of record data.

Both backends are pinned to the same FIPS vectors in the test suite, and the
pure backend is additionally cross-checked against hashlib on random inputs
by a hypothesis property test.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable

DIGEST_SIZE = 32
BLOCK_SIZE = 64

# First 32 bits of the fractional parts of the cube roots of the first 64 primes.
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

# First 32 bits of the fractional parts of the square roots of the first 8 primes.
_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_MASK = 0xFFFFFFFF


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK


def _compress(state: Iterable[int], block: bytes) -> tuple:
    """One application of the SHA-256 compression function."""
    w = list(struct.unpack(">16I", block))
    for i in range(16, 64):
        s0 = _rotr(w[i - 15], 7) ^ _rotr(w[i - 15], 18) ^ (w[i - 15] >> 3)
        s1 = _rotr(w[i - 2], 17) ^ _rotr(w[i - 2], 19) ^ (w[i - 2] >> 10)
        w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK)

    a, b, c, d, e, f, g, h = state
    for i in range(64):
        s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        temp1 = (h + s1 + ch + _K[i] + w[i]) & _MASK
        s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (s0 + maj) & _MASK
        h, g, f, e, d, c, b, a = (
            g, f, e, (d + temp1) & _MASK, c, b, a, (temp1 + temp2) & _MASK,
        )

    s = tuple(state)
    return (
        (s[0] + a) & _MASK, (s[1] + b) & _MASK, (s[2] + c) & _MASK,
        (s[3] + d) & _MASK, (s[4] + e) & _MASK, (s[5] + f) & _MASK,
        (s[6] + g) & _MASK, (s[7] + h) & _MASK,
    )


class SHA256:
    """Incremental SHA-256 with a hashlib-compatible interface.

    Args:
        data: optional initial bytes to absorb.
        backend: ``"hashlib"`` (default) or ``"pure"``.
    """

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE

    def __init__(self, data: bytes = b"", backend: str = "hashlib") -> None:
        if backend not in ("hashlib", "pure"):
            raise ValueError(f"unknown SHA-256 backend: {backend!r}")
        self._backend = backend
        if backend == "hashlib":
            self._h = hashlib.sha256()
        else:
            self._state = _H0
            self._buffer = b""
            self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb more message bytes.

        ``self._buffer`` only ever holds the sub-block tail (< 64 bytes):
        full blocks are compressed straight out of a :class:`memoryview`
        over ``data``, so absorbing a long message in many small updates
        costs O(len) total instead of the old grow-and-reslice O(len**2).
        """
        if self._backend == "hashlib":
            self._h.update(data)
            return
        self._length += len(data)
        offset = 0
        state = self._state
        if self._buffer:
            need = BLOCK_SIZE - len(self._buffer)
            if len(data) < need:
                self._buffer += bytes(data)
                return
            state = _compress(state, self._buffer + bytes(data[:need]))
            offset = need
            self._buffer = b""
        view = memoryview(data)
        end = offset + ((len(data) - offset) // BLOCK_SIZE) * BLOCK_SIZE
        for start in range(offset, end, BLOCK_SIZE):
            state = _compress(state, view[start:start + BLOCK_SIZE])
        self._state = state
        if end < len(data):
            self._buffer = bytes(view[end:])

    def digest(self) -> bytes:
        """Return the 32-byte digest of everything absorbed so far."""
        if self._backend == "hashlib":
            return self._h.digest()
        # Pad a copy so the object remains usable for further updates.
        bit_length = self._length * 8
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = self._buffer + padding + struct.pack(">Q", bit_length)
        state = self._state
        for i in range(0, len(tail), BLOCK_SIZE):
            state = _compress(state, tail[i:i + BLOCK_SIZE])
        return struct.pack(">8I", *state)

    def hexdigest(self) -> str:
        """Digest as lowercase hex."""
        return self.digest().hex()

    def copy(self) -> "SHA256":
        """Independent copy of the running hash state."""
        clone = SHA256(backend=self._backend)
        if self._backend == "hashlib":
            clone._h = self._h.copy()
        else:
            clone._state = self._state
            clone._buffer = self._buffer
            clone._length = self._length
        return clone


def sha256(data: bytes, backend: str = "hashlib") -> bytes:
    """One-shot SHA-256 of ``data``."""
    return SHA256(data, backend=backend).digest()
