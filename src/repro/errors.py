"""Exception hierarchy shared by every subsystem in the library.

All library-raised errors derive from :class:`ReproError` so applications can
catch everything from one root.  Subsystem roots (``CryptoError``,
``TlsError``, ``SgxError``, ...) exist so tests can assert the *kind* of
failure without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


# ---------------------------------------------------------------- crypto

class CryptoError(ReproError):
    """Root for cryptographic failures."""


class InvalidSignature(CryptoError):
    """A signature failed verification."""


class InvalidTag(CryptoError):
    """An AEAD authentication tag failed verification."""


class InvalidKey(CryptoError):
    """A key is malformed, of the wrong type, or outside its valid range."""


class InvalidPoint(CryptoError):
    """An elliptic-curve point is not on the curve or is the identity."""


class EntropyError(CryptoError):
    """A DRBG was used before seeding or exceeded its reseed interval."""


# ---------------------------------------------------------------- encoding / PKI

class EncodingError(ReproError):
    """Malformed serialized data (DER-lite, framing, hex, base64...)."""


class PkiError(ReproError):
    """Root for certificate/trust failures."""


class CertificateError(PkiError):
    """A certificate is malformed or fails constraint checks."""


class CertificateExpired(CertificateError):
    """A certificate is outside its validity window."""


class CertificateRevoked(CertificateError):
    """A certificate appears on a CRL."""


class UntrustedCertificate(PkiError):
    """No chain to a trust anchor could be built."""


class RatlsError(PkiError):
    """An RA-TLS (quote-bearing) certificate failed attested validation.

    Subclasses :class:`PkiError` so the TLS server's certificate-validation
    path converts it into a ``bad_certificate`` alert like any other peer
    validation failure."""


class KeystoreError(PkiError):
    """A keystore/truststore operation failed."""


#: Java-keystore-style spelling, kept as an alias so callers can catch the
#: name the KMS docs use without a second class in the hierarchy.
KeyStoreError = KeystoreError


# ---------------------------------------------------------------- network

class NetError(ReproError):
    """Root for simulated-network failures."""


class AddressError(NetError):
    """Unknown or malformed network address."""


class ChannelClosed(NetError):
    """I/O attempted on a closed channel."""


class ConnectionRefused(NetError):
    """No listener at the destination address/port."""


class FramingError(NetError):
    """A length-prefixed frame is malformed or oversized."""


class RestError(NetError):
    """Malformed HTTP/REST message."""


# ---------------------------------------------------------------- TLS

class TlsError(ReproError):
    """Root for TLS protocol failures."""


class TlsAlert(TlsError):
    """A fatal alert was raised or received.

    Attributes:
        description: numeric alert description code (see ``repro.tls.alerts``).
    """

    def __init__(self, description: int, message: str = "") -> None:
        super().__init__(message or f"TLS alert {description}")
        self.description = description


class HandshakeFailure(TlsError):
    """The handshake could not be completed."""


class RecordError(TlsError):
    """A TLS record is malformed, oversized, or fails decryption."""


# ---------------------------------------------------------------- SGX

class SgxError(ReproError):
    """Root for SGX-model failures."""


class EnclaveLifecycleError(SgxError):
    """An enclave operation was attempted in the wrong lifecycle state."""


class EnclaveMemoryViolation(SgxError):
    """Code outside an enclave touched enclave-private memory."""


class EcallError(SgxError):
    """An ECALL target does not exist or its invocation failed."""


class SealingError(SgxError):
    """Sealed-blob unsealing failed (wrong platform, identity, or tamper)."""


class QuoteError(SgxError):
    """Quote generation or verification failed."""


class LaunchError(SgxError):
    """SIGSTRUCT/launch-control rejected the enclave."""


# ---------------------------------------------------------------- attestation services

class IasError(ReproError):
    """Root for Intel-Attestation-Service failures."""


class PlatformRevoked(IasError):
    """The platform's EPID key is on a revocation list."""


class QuoteRejected(IasError):
    """IAS could not verify the quote signature."""


class IasUnavailable(IasError):
    """IAS answered with a transient 5xx/429 — retryable, unlike a verdict."""


# ---------------------------------------------------------------- IMA / TPM

class ImaError(ReproError):
    """Root for integrity-measurement failures."""


class PolicyError(ImaError):
    """An IMA policy rule is malformed."""


class TpmError(ReproError):
    """Root for TPM-model failures."""


# ---------------------------------------------------------------- containers

class ContainerError(ReproError):
    """Root for container-substrate failures."""


class ImageNotFound(ContainerError):
    """Requested image/tag is not in the registry."""


class ContainerStateError(ContainerError):
    """A container operation was attempted in the wrong state."""


# ---------------------------------------------------------------- SDN

class SdnError(ReproError):
    """Root for SDN-substrate failures."""


class AuthenticationFailed(SdnError):
    """Northbound API rejected the caller's credentials."""


class ControllerUnavailable(SdnError):
    """The northbound endpoint answered with a transient 5xx — retryable."""


class FlowError(SdnError):
    """Flow-rule installation or lookup failed."""


class TopologyError(SdnError):
    """Switch/link registration problem."""


class FabricError(SdnError):
    """Trusted-fabric failure (replication, failover, fan-out)."""


class ReplicationError(FabricError):
    """The replicated keystore log rejected an entry (gap, divergence)."""


# ---------------------------------------------------------------- core

class VnfSgxError(ReproError):
    """Root for errors raised by the paper's core components."""


class AttestationFailed(VnfSgxError):
    """Remote attestation of a host or VNF enclave failed."""


class AppraisalFailed(VnfSgxError):
    """The measurement list did not match the expected values."""


class EnrollmentError(VnfSgxError):
    """The VNF enrolment protocol failed."""


class ProvisioningError(VnfSgxError):
    """Credential provisioning to an enclave failed."""


class RevocationError(VnfSgxError):
    """Credential or platform revocation failed."""


# ---------------------------------------------------------------- key manager

class KmsError(ReproError):
    """Root for key-manager-service failures."""


class NamespaceError(KmsError):
    """A tenant namespace is missing, malformed, or already exists."""


class TenantAuthError(KmsError):
    """A request carried no valid authorization for the target namespace."""


class TenantQuotaExceeded(KmsError):
    """A tenant exceeded its secret-count or request-rate quota."""


class SecretNotFound(KmsError):
    """The named secret does not exist in the tenant's namespace."""


class KmsUnavailable(KmsError):
    """The KMS endpoint answered with a transient 5xx — retryable."""


# --------------------------------------------------------------------------
# Observability


class ObservabilityError(ReproError):
    """Telemetry misuse: bad metric names, label mismatches, span errors."""
