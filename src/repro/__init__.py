"""Reproduction of *Safeguarding VNF Credentials with Intel SGX* (SIGCOMM'17).

The package implements, from scratch and in pure Python, every subsystem the
paper's prototype depends on (an SGX enclave model, the Intel Attestation
Service, Linux IMA, a Docker-like container substrate, a Floodlight-like SDN
controller, a TLS-1.2-style protocol, and the crypto/PKI primitives beneath
them) plus the paper's contribution itself: a Verification Manager that
attests container hosts and VNF enclaves, provisions authentication
credentials into enclaves, and lets VNFs speak TLS to the controller without
their keys ever leaving the enclave boundary.

Public entry points:

- :class:`repro.core.verification_manager.VerificationManager`
- :class:`repro.core.workflow.Deployment` — the executable Figure 1.
- :mod:`repro.sgx`, :mod:`repro.ias`, :mod:`repro.ima`, :mod:`repro.tpm`,
  :mod:`repro.containers`, :mod:`repro.sdn` — the substrates.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
