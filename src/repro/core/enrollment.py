"""The enrolment state machine (the paper's use case 2).

"The second use case is enrolling the VNF into the SDN deployment.  A
prerequisite for this is that the VNF has been attested...  The provisioned
key can then be used to establish a secure communication session with the
SDN controller."

:class:`EnrollmentSession` drives the Figure 1 workflow for one VNF and
records per-step timings (simulated and wall-clock), which is what
experiment E1 reports.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.host_agent import HostAgentClient
from repro.core.verification_manager import VerificationManager
from repro.errors import (
    ControllerUnavailable,
    EnrollmentError,
    IasUnavailable,
    NetError,
)
from repro.net.retry import RetryPolicy, retry_call

#: Failures a step re-attempt can plausibly cure: transport faults and
#: transient service statuses.  Appraisal/attestation verdicts are not
#: retryable — a *rejected* host does not become trustworthy by asking
#: again.
STEP_RETRYABLE = (NetError, IasUnavailable, ControllerUnavailable)

STATE_INIT = "init"
STATE_HOST_ATTESTED = "host-attested"
STATE_VNF_ATTESTED_AND_PROVISIONED = "provisioned"
STATE_ENROLLED = "enrolled"
STATE_FAILED = "failed"


@dataclass
class StepTiming:
    """Timing record for one workflow step."""

    step: str
    simulated_seconds: float
    wall_seconds: float


@dataclass
class EnrollmentSession:
    """Drives one VNF from untrusted to enrolled.

    Args:
        vm: the Verification Manager.
        agent: the host agent stub for the VNF's container host.
        host_name: the container host.
        vnf_name: the VNF to enrol.
        controller_address: where the enrolled VNF should connect.
        sim_now: simulated-time source for timings.
        telemetry: optional :class:`repro.obs.Telemetry`; when set, each
            step opens a span and lands in the
            ``vnf_sgx_workflow_step_seconds{step=...}`` histogram.
        retry_policy: optional step-level :class:`RetryPolicy`; a step
            that fails with a transient error (:data:`STEP_RETRYABLE`)
            is re-run whole, with backoff charged to ``clock``.  The
            layering is deliberate: client-level retries absorb single
            lost packets, session-level retries absorb failures spanning
            a whole step (e.g. an enclave restart mid-provisioning).
        clock: virtual clock for retry backoff (required with a policy).
        retry_rng: DRBG for deterministic backoff jitter.
    """

    vm: VerificationManager
    agent: HostAgentClient
    host_name: str
    vnf_name: str
    controller_address: str
    sim_now: Callable[[], float] = lambda: 0.0
    telemetry: Optional[object] = None
    retry_policy: Optional[RetryPolicy] = None
    clock: Optional[object] = None
    retry_rng: Optional[object] = None
    state: str = STATE_INIT
    timings: List[StepTiming] = field(default_factory=list)
    certificate_serial: Optional[int] = None
    #: A serial pre-reserved via ``vm.ca.reserve_serial()``; the fleet
    #: scheduler reserves serials in submission order so pooled workers
    #: issue byte-identical certificates regardless of interleaving.
    reserved_serial: Optional[int] = None

    def _attempt(self, step: str, fn: Callable[[], object]) -> object:
        if self.retry_policy is None:
            return fn()
        operation = f"enrollment:{step.split(' ')[0]}"
        return retry_call(
            fn, policy=self.retry_policy, clock=self.clock,
            operation=operation, rng=self.retry_rng,
            retryable=STEP_RETRYABLE, telemetry=self.telemetry,
        )

    def _timed(self, step: str, fn: Callable[[], object]) -> object:
        tel = self.telemetry
        sim_start = self.sim_now()
        wall_start = time.perf_counter()
        try:
            with (tel.span(step, vnf=self.vnf_name) if tel is not None
                  else nullcontext()):
                result = self._attempt(step, fn)
        except Exception:
            self.state = STATE_FAILED
            raise
        simulated = self.sim_now() - sim_start
        self.timings.append(StepTiming(
            step=step,
            simulated_seconds=simulated,
            wall_seconds=time.perf_counter() - wall_start,
        ))
        if tel is not None:
            tel.workflow_step_seconds.labels(step=step).observe(simulated)
        return result

    # ----------------------------------------------------------- the steps

    def attest_host(self):
        """Steps 1-2: host attestation + IAS verification + appraisal."""
        if self.state != STATE_INIT:
            raise EnrollmentError(f"attest_host in state {self.state}")

        def attest_and_check():
            result = self.vm.attest_host(self.agent, self.host_name)
            result.raise_if_failed(self.host_name)
            return result

        result = self._timed("host-attestation (steps 1-2)",
                             attest_and_check)
        self.state = STATE_HOST_ATTESTED
        return result

    def provision(self):
        """Steps 3-5: VNF attestation, credential issue + provisioning."""
        if self.state != STATE_HOST_ATTESTED:
            raise EnrollmentError(f"provision in state {self.state}")
        def issue_and_provision():
            serial = self.reserved_serial
            if serial is not None and self.vm.ca.is_issued(serial):
                # A previous attempt consumed the reservation before
                # failing downstream of issuance; re-using it would trip
                # the CA's double-issuance guard, so fall back to a
                # fresh allocation (the faulted path has already
                # diverged from the serial schedule anyway).
                serial = None
            return self.vm.enroll_vnf(
                self.agent, self.host_name, self.vnf_name,
                self.controller_address, serial=serial,
            )

        certificate = self._timed(
            "vnf-attestation+provisioning (steps 3-5)",
            issue_and_provision,
        )
        self.certificate_serial = certificate.serial
        self.state = STATE_VNF_ATTESTED_AND_PROVISIONED
        return certificate

    def connect(self, client) -> dict:
        """Step 6: first authenticated controller call through the enclave."""
        if self.state != STATE_VNF_ATTESTED_AND_PROVISIONED:
            raise EnrollmentError(f"connect in state {self.state}")
        summary = self._timed(
            "controller-session (step 6)",
            client.summary,
        )
        self.state = STATE_ENROLLED
        return summary

    def run(self, client) -> List[StepTiming]:
        """Run all steps; returns the timing breakdown."""
        self.attest_host()
        self.provision()
        self.connect(client)
        return list(self.timings)

    @property
    def total_simulated_seconds(self) -> float:
        """Sum of per-step simulated time."""
        return sum(t.simulated_seconds for t in self.timings)
