"""RA-TLS enrollment: attestation rides the first controller handshake.

The classic :class:`~repro.core.enrollment.EnrollmentSession` runs the
paper's Figure 1 out-of-band: host attestation (steps 1-2), enclave
attestation + credential provisioning through the Verification Manager
(steps 3-5), and only then the controller connection (step 6) — every
step a separate protocol round trip over the simulated network.

The RA-TLS alternative collapses steps 3-6 into the TLS handshake
itself: the enclave generates its key, quotes the key binding, and
self-signs a quote-bearing certificate *locally* (no VM round trips,
no CA issuance); the controller's :class:`~repro.tls.ratls.RatlsVerifier`
then attests the quote during the handshake, reusing the memoised IAS
verdict on every reconnect.  Experiment E14 measures both effects:
O(1) IAS calls across reconnects and the multi-× cut in enrollment
round trips at fleet scale.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.credential_enclave import CredentialEnclave
from repro.core.enrollment import StepTiming
from repro.errors import EnrollmentError

STATE_INIT = "init"
STATE_PREPARED = "ratls-prepared"
STATE_ENROLLED = "enrolled"
STATE_FAILED = "failed"

#: Default validity of a self-signed RA-TLS certificate, in simulated
#: seconds.  Shorter-lived than CA credentials is fine: renewal is a
#: purely local re-sign, not a provisioning protocol run.
DEFAULT_VALIDITY_SECONDS = 24 * 3600


@dataclass
class RatlsEnrollmentSession:
    """Drives one VNF through the RA-TLS attested-channel path.

    Args:
        enclave: the VNF's credential-enclave handle (host side).
        verifier: the controller-side RA-TLS verifier (from
            ``vm.ratls_verifier()``) — used only to pre-register the
            subject so revocation covers identities that have not
            reconnected yet.
        basename: EPID basename for the quote (deployment policy's).
        anchors: encoded server anchors for validating the controller.
        controller_address: the RA-TLS northbound address.
        sim_now: simulated-time source for timings.
        telemetry: optional :class:`repro.obs.Telemetry`.
    """

    enclave: CredentialEnclave
    verifier: object
    basename: bytes
    anchors: tuple
    controller_address: str
    sim_now: Callable[[], float] = lambda: 0.0
    telemetry: Optional[object] = None
    validity_seconds: int = DEFAULT_VALIDITY_SECONDS
    state: str = STATE_INIT
    timings: List[StepTiming] = field(default_factory=list)

    def _timed(self, step: str, fn: Callable[[], object]) -> object:
        tel = self.telemetry
        sim_start = self.sim_now()
        wall_start = time.perf_counter()
        try:
            with (tel.span(step, vnf=self.enclave.vnf_name)
                  if tel is not None else nullcontext()):
                result = fn()
        except Exception:
            self.state = STATE_FAILED
            raise
        simulated = self.sim_now() - sim_start
        self.timings.append(StepTiming(
            step=step,
            simulated_seconds=simulated,
            wall_seconds=time.perf_counter() - wall_start,
        ))
        if tel is not None:
            tel.workflow_step_seconds.labels(step=step).observe(simulated)
        return result

    # ----------------------------------------------------------- the steps

    def prepare(self) -> str:
        """Local credential preparation: quote the in-enclave key and
        self-sign the quote-bearing certificate.  No network traffic —
        the quoting enclave and the self-signature are host-local."""
        if self.state != STATE_INIT:
            raise EnrollmentError(f"prepare in state {self.state}")

        def build_credential():
            quote = self.enclave.ratls_begin(self.basename)
            subject = self.enclave.ratls_install(
                quote, self.anchors, self.controller_address,
                self.validity_seconds,
            )
            self.verifier.register_subject(
                subject, (self.enclave.host.name,)
            )
            return subject

        subject = self._timed("ratls-credential-preparation",
                              build_credential)
        self.state = STATE_PREPARED
        return subject

    def connect(self, client) -> dict:
        """The attested connect: the handshake itself carries the quote,
        so this one exchange is attestation + channel setup + first
        authenticated controller call."""
        if self.state != STATE_PREPARED:
            raise EnrollmentError(f"connect in state {self.state}")
        summary = self._timed("ratls-attested-connect", client.summary)
        self.state = STATE_ENROLLED
        return summary

    def run(self, client) -> List[StepTiming]:
        """Run both steps; returns the timing breakdown."""
        self.prepare()
        self.connect(client)
        return list(self.timings)

    @property
    def total_simulated_seconds(self) -> float:
        """Sum of per-step simulated time."""
        return sum(t.simulated_seconds for t in self.timings)
