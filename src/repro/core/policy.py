"""Deployment policy: what the Verification Manager is configured to trust."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import attestation_enclave as ae
from repro.core import credential_enclave as ce

DEFAULT_BASENAME = b"vnf-sgx-deployment"
DEFAULT_CREDENTIAL_VALIDITY = 30 * 24 * 3600  # 30 simulated days


@dataclass
class DeploymentPolicy:
    """Administrator configuration for one SDN deployment.

    Attributes:
        expected_attestation_mrenclave: golden measurement of the host-side
            integrity attestation enclave.
        expected_credential_mrenclave: golden measurement of the VNF
            credential enclave.
        min_isv_svn: oldest acceptable enclave security version.
        allow_debug_enclaves: accept DEBUG-attribute enclaves (whose memory
            the host can read).  Never enable in production; the default
            rejects them, as real relying parties must.
        require_tpm: insist on TPM-rooted measurement lists (paper §4).
        basename: EPID basename pinning quote linkability to this
            deployment (what makes SigRL revocation effective).
        credential_validity: lifetime of issued client certificates.
    """

    expected_attestation_mrenclave: bytes = field(
        default_factory=ae.reference_measurement
    )
    expected_credential_mrenclave: bytes = field(
        default_factory=ce.reference_measurement
    )
    min_isv_svn: int = 1
    allow_debug_enclaves: bool = False
    require_tpm: bool = False
    basename: bytes = DEFAULT_BASENAME
    credential_validity: int = DEFAULT_CREDENTIAL_VALIDITY

    def check_enclave_svn(self, isv_svn: int) -> bool:
        """True when the quoted SVN meets the policy floor."""
        return isv_svn >= self.min_isv_svn
