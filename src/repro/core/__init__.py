"""The paper's contribution: SGX-protected VNF credentials in SDN.

Components, mapping one-to-one onto Figure 1 of the paper:

- :mod:`repro.core.verification_manager` — the Verification Manager:
  attests container hosts (step 1) and VNF enclaves (step 3) with IAS
  verification (steps 2 and 4), appraises IMA measurement lists, acts as
  the deployment CA, and provisions credentials into enclaves (step 5).
- :mod:`repro.core.attestation_enclave` — the host-side Integrity
  Attestation Enclave that ships the IML inside a quote.
- :mod:`repro.core.credential_enclave` — the VNF-side TEE holding
  credentials and terminating TLS to the controller (step 6).
- :mod:`repro.core.provisioning` — the sealed-to-attested-key credential
  delivery protocol.
- :mod:`repro.core.appraisal` — expected-value appraisal of the IML,
  optionally TPM-rooted.
- :mod:`repro.core.enrollment` — the use-case-2 state machine.
- :mod:`repro.core.fleet` — the worker-pool scheduler that enrolls many
  VNFs concurrently (single-flight host attestation, pooled IAS
  connection, deterministic credentials).
- :mod:`repro.core.kernels` — pure CPU-bound kernels (quote verify,
  certificate sign, sealing AEAD) and the :class:`KernelPool` process
  pool that escapes the GIL for them (see ``docs/PARALLELISM.md``).
- :mod:`repro.core.revocation` — credential/platform revocation.
- :mod:`repro.core.workflow` — the executable Figure 1 deployment.
- :mod:`repro.core.events` — the audit log.
"""

from repro.core.appraisal import AppraisalEngine, ExpectedValues, AppraisalResult
from repro.core.attestation_enclave import AttestationEnclave
from repro.core.credential_enclave import CredentialEnclave, EnclaveBackedClient
from repro.core.enrollment import EnrollmentSession
from repro.core.events import AuditLog, AuditEvent
from repro.core.fleet import (
    FleetReport,
    FleetResult,
    FleetScheduler,
    PooledIasClient,
)
from repro.core.host_agent import HostAgent, HostAgentClient
from repro.core.kernels import KernelPool
from repro.core.policy import DeploymentPolicy
from repro.core.provisioning import CredentialBundle
from repro.core.verification_manager import VerificationManager
from repro.core.workflow import Deployment, WorkflowTrace

__all__ = [
    "AppraisalEngine",
    "ExpectedValues",
    "AppraisalResult",
    "AttestationEnclave",
    "CredentialEnclave",
    "EnclaveBackedClient",
    "EnrollmentSession",
    "AuditLog",
    "AuditEvent",
    "FleetReport",
    "FleetResult",
    "FleetScheduler",
    "PooledIasClient",
    "HostAgent",
    "HostAgentClient",
    "KernelPool",
    "DeploymentPolicy",
    "CredentialBundle",
    "VerificationManager",
    "Deployment",
    "WorkflowTrace",
]
