"""Caching of IAS verification verdicts by evidence digest.

The Verification Manager's single most expensive external dependency is
the IAS round trip (quote out, signed AVR back, AVR signature check).  A
retry storm — an enrollment session re-driving ``attest → issue →
provision`` after a provisioning fault, or an operator hammering a flaky
workflow — re-submits *byte-identical* evidence: the same quote bound to
the same nonce.  IAS's verdict for identical bytes is deterministic until
revocation state changes, so re-verifying buys nothing but latency.

:class:`VerificationCache` memoises successful verdicts keyed by
``SHA-256(len(quote) || quote || nonce)``.  Only ``ok`` verdicts for
checked evidence are stored (a rejection is cheap to reproduce and must
never be cached past an operator fixing the platform).  Entries carry the
*subject* (host or VNF name) they verified so revocation can evict them:
:meth:`invalidate_subject` and the :meth:`invalidate_where` predicate
sweep mirror :meth:`repro.tls.session.SessionCache.invalidate_where` —
the same "a cache that bypasses verification must be flushed by
revocation" rule the TLS resumption cache follows.

The cache is bounded (LRU) and optionally time-limited via ``max_age``
(simulated seconds), so stale verdicts age out even without an explicit
revocation event.

All operations (lookup-and-promote, store-and-evict, predicate sweeps,
hit/miss accounting) run under one internal lock so concurrent fleet
enrollments never tear the LRU order or lose an eviction; see
``docs/CONCURRENCY.md``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.sanitizer import make_rlock, shared_state
from repro.crypto.sha256 import sha256
from repro.ias.report import AttestationVerificationReport


@dataclass
class CachedVerdict:
    """One memoised IAS verdict.

    Attributes:
        subject: the host/VNF name the evidence attested (eviction key).
        avr: the signed report IAS returned (already signature-checked).
        stored_at: simulated time of the original verification.
    """

    subject: str
    avr: AttestationVerificationReport
    stored_at: float


def evidence_key(quote_bytes: bytes, nonce: str) -> bytes:
    """Digest identifying one (quote, nonce) evidence pair.

    Length-prefixing the quote keeps the concatenation injective — a
    quote ending in nonce-like bytes cannot collide with a shorter quote
    plus a longer nonce.
    """
    prefix = len(quote_bytes).to_bytes(8, "big")
    return sha256(prefix + quote_bytes + nonce.encode("utf-8"))


@shared_state("_entries")
class VerificationCache:
    """Bounded LRU of successful IAS verdicts, keyed by evidence digest."""

    def __init__(self, capacity: int = 1024,
                 max_age: Optional[float] = None,
                 now: Callable[[], float] = lambda: 0.0) -> None:
        if capacity <= 0:
            raise ValueError("verification cache capacity must be positive")
        self.capacity = capacity
        self.max_age = max_age
        self._now = now
        self._entries: "OrderedDict[bytes, CachedVerdict]" = OrderedDict()
        self._lock = make_rlock("cache")
        self.hits = 0
        self.misses = 0

    # --------------------------------------------------------------- lookup

    def lookup(self, quote_bytes: bytes,
               nonce: str) -> Optional[AttestationVerificationReport]:
        """The cached AVR for byte-identical evidence, or ``None``.

        Expired entries (``max_age``) are dropped on access.
        """
        key = evidence_key(quote_bytes, nonce)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self.max_age is not None \
                    and self._now() - entry.stored_at > self.max_age:
                del self._entries[key]
                entry = None
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.avr

    def store(self, quote_bytes: bytes, nonce: str, subject: str,
              avr: AttestationVerificationReport) -> None:
        """Memoise a *successful* verdict; evicts LRU-oldest when full."""
        key = evidence_key(quote_bytes, nonce)
        with self._lock:
            if (key not in self._entries
                    and len(self._entries) >= self.capacity):
                self._entries.popitem(last=False)
            self._entries[key] = CachedVerdict(subject, avr, self._now())
            self._entries.move_to_end(key)

    # ----------------------------------------------------------- eviction

    def invalidate_subject(self, subject: str) -> int:
        """Drop every verdict obtained for ``subject``; returns the count.

        Called on revocation: a distrusted host (or revoked VNF) must not
        keep a cached "trustworthy" verdict that would let a retry skip
        re-verification against the *new* revocation state.
        """
        return self.invalidate_where(lambda entry: entry.subject == subject)

    def invalidate_where(self, predicate: Callable[[CachedVerdict], bool]
                         ) -> int:
        """Drop every entry matching ``predicate``; returns the count.

        Same pattern as :meth:`repro.tls.session.SessionCache.
        invalidate_where`: the predicate sees the full cached entry.
        """
        with self._lock:
            doomed = [key for key, entry in self._entries.items()
                      if predicate(entry)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        """Drop everything (hit/miss counters survive)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
