"""The Verification Manager's audit log.

Every trust decision — attestation verdicts, appraisal failures, credential
issuance and revocation — is recorded with its simulated timestamp, so
operators (and tests) can reconstruct why a VNF does or does not hold
credentials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.sanitizer import make_lock

EVENT_HOST_ATTESTED = "host-attested"
EVENT_HOST_REJECTED = "host-rejected"
EVENT_VNF_ATTESTED = "vnf-attested"
EVENT_VNF_REJECTED = "vnf-rejected"
EVENT_CREDENTIAL_ISSUED = "credential-issued"
EVENT_CREDENTIAL_PROVISIONED = "credential-provisioned"
EVENT_CREDENTIAL_REVOKED = "credential-revoked"
EVENT_PLATFORM_REVOKED = "platform-revoked"
EVENT_APPRAISAL_FAILED = "appraisal-failed"
EVENT_ENROLLMENT_COMPLETE = "enrollment-complete"


@dataclass(frozen=True)
class AuditEvent:
    """One audit record."""

    kind: str
    subject: str
    timestamp: float
    details: str = ""


class AuditLog:
    """Append-only event store with simple querying.

    An optional ``observer`` callable is invoked with every recorded
    event; the telemetry layer uses it to keep the
    ``vnf_sgx_audit_events_total`` counter in lock-step with the log.

    Thread-safe: concurrent fleet enrollments record trust decisions
    from many worker threads; appends run under an internal lock and
    query methods snapshot the list before filtering (see
    ``docs/CONCURRENCY.md``).  The observer is invoked *outside* the
    lock — telemetry counters have their own locks, and calling out
    under ours would invert the lock ordering.
    """

    def __init__(self, now: Callable[[], float] = lambda: 0.0) -> None:
        self._now = now
        self._events: List[AuditEvent] = []
        self._lock = make_lock("audit")
        self.observer: Optional[Callable[[AuditEvent], None]] = None

    def record(self, kind: str, subject: str, details: str = "") -> AuditEvent:
        """Append an event stamped with the current simulated time."""
        event = AuditEvent(kind=kind, subject=subject,
                           timestamp=self._now(), details=details)
        with self._lock:
            self._events.append(event)
        if self.observer is not None:
            self.observer(event)
        return event

    def events(self, kind: Optional[str] = None,
               subject: Optional[str] = None) -> List[AuditEvent]:
        """Events, optionally filtered by kind and/or subject."""
        with self._lock:
            out: List[AuditEvent] = list(self._events)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if subject is not None:
            out = [e for e in out if e.subject == subject]
        return out

    def counts(self) -> Dict[str, int]:
        """Event counts by kind."""
        with self._lock:
            snapshot = list(self._events)
        counts: Dict[str, int] = {}
        for event in snapshot:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
