"""The Verification Manager's audit log.

Every trust decision — attestation verdicts, appraisal failures, credential
issuance and revocation — is recorded with its simulated timestamp, so
operators (and tests) can reconstruct why a VNF does or does not hold
credentials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

EVENT_HOST_ATTESTED = "host-attested"
EVENT_HOST_REJECTED = "host-rejected"
EVENT_VNF_ATTESTED = "vnf-attested"
EVENT_VNF_REJECTED = "vnf-rejected"
EVENT_CREDENTIAL_ISSUED = "credential-issued"
EVENT_CREDENTIAL_PROVISIONED = "credential-provisioned"
EVENT_CREDENTIAL_REVOKED = "credential-revoked"
EVENT_PLATFORM_REVOKED = "platform-revoked"
EVENT_APPRAISAL_FAILED = "appraisal-failed"
EVENT_ENROLLMENT_COMPLETE = "enrollment-complete"


@dataclass(frozen=True)
class AuditEvent:
    """One audit record."""

    kind: str
    subject: str
    timestamp: float
    details: str = ""


class AuditLog:
    """Append-only event store with simple querying.

    An optional ``observer`` callable is invoked with every recorded
    event; the telemetry layer uses it to keep the
    ``vnf_sgx_audit_events_total`` counter in lock-step with the log.
    """

    def __init__(self, now: Callable[[], float] = lambda: 0.0) -> None:
        self._now = now
        self._events: List[AuditEvent] = []
        self.observer: Optional[Callable[[AuditEvent], None]] = None

    def record(self, kind: str, subject: str, details: str = "") -> AuditEvent:
        """Append an event stamped with the current simulated time."""
        event = AuditEvent(kind=kind, subject=subject,
                           timestamp=self._now(), details=details)
        self._events.append(event)
        if self.observer is not None:
            self.observer(event)
        return event

    def events(self, kind: Optional[str] = None,
               subject: Optional[str] = None) -> List[AuditEvent]:
        """Events, optionally filtered by kind and/or subject."""
        out = self._events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if subject is not None:
            out = [e for e in out if e.subject == subject]
        return list(out)

    def counts(self) -> Dict[str, int]:
        """Event counts by kind."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._events)
