"""Process-pool verification kernels — the GIL escape hatch.

The fleet scheduler (PR 4) overlaps enrollment *I/O* across threads, but
every quote-verify and cert-sign still serializes on the GIL: the EC math
runs in pure Python, so eight fleet threads buy eight overlapped waits and
one core of arithmetic.  This module refactors the CPU-bound hot paths
into **kernels** — picklable, side-effect-free functions over bytes — and
a :class:`KernelPool` that dispatches them to a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Design rules (see ``docs/PARALLELISM.md``):

- **Kernels are pure.**  They take bytes/ints/strings, return
  bytes/ints/strings, and reference no service object, no lock, no clock
  and no RNG.  Everything order-sensitive (report ids, AVR timestamps,
  reserved serials, seal key-ids/nonces) is assigned *in-process, in
  submission order* and passed in, so kernel outputs are byte-identical
  to the in-process path regardless of worker scheduling.
- **Workers hold no locks.**  Callers snapshot shared state (the IAS
  verification snapshot, the CA key bytes) under their own locks, release
  them, run the kernel, and re-enter the lock only to record the result.
- **Inline fallback.**  ``workers=0``, a pickling failure, or a broken
  pool all degrade to calling the kernel in-process — same bytes, no
  parallelism, never an error the caller has to handle.
- This module is the *only* sanctioned user of multiprocessing
  primitives (lint rule HYG005): a stray ``ProcessPoolExecutor``
  elsewhere would fork with arbitrary locks held and escape the
  lock-order analysis.

This module sits inside the enclave boundary for secret-flow purposes
(``repro.analysis.base.ENCLAVE_MODULES``): kernels legitimately handle
raw key material (the CA signing scalar, the EPID group secret, sealing
fuse keys) because the worker process *is* the enclave model's compute,
not an observable channel.
"""

from __future__ import annotations

import os
import pickle
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.sanitizer import make_lock
from repro.crypto.keys import EcPrivateKey
from repro.errors import QuoteError, ReproError
from repro.ias.report import sign_report
from repro.ias.revocation_lists import PrivRl, SigRl
from repro.ias.service import QuoteStatus
from repro.pki import der
from repro.sgx.enclave import EnclaveIdentity
from repro.sgx.epid import EpidGroup, pseudonym
from repro.sgx.quote import Quote
from repro.sgx.sealing import seal_deterministic

# --------------------------------------------------------------------------
# Verification-state snapshot
# --------------------------------------------------------------------------
#
# A snapshot is one DER blob carrying everything `verify_quote_kernel`
# needs to reproduce `IasService._status_for` exactly: the EPID group
# (id + manager secret), both revocation lists, the group-revocation
# flag, and the TCB floor.  It is built fresh per dispatch — revocation
# lists mutate in place (cf. E6's `fill_sigrl`), so a cached snapshot
# would go stale silently.


def encode_verification_snapshot(group_id: bytes, group_secret_bytes: bytes,
                                 priv_rl_bytes: bytes, sig_rl_bytes: bytes,
                                 group_revoked: bool,
                                 min_qe_svn: int) -> bytes:
    """Serialize one IAS verification state into a kernel-shippable blob."""
    return der.encode([
        group_id, group_secret_bytes, priv_rl_bytes, sig_rl_bytes,
        bool(group_revoked), int(min_qe_svn),
    ])


class _VerificationState:
    """Decoded snapshot: the worker-side view of one IAS."""

    def __init__(self, snapshot: bytes) -> None:
        (group_id, group_secret_bytes, priv_rl_bytes, sig_rl_bytes,
         group_revoked, min_qe_svn) = der.decode(snapshot)
        self.group = EpidGroup(group_id, group_secret_bytes)
        self.priv_rl = PrivRl.from_bytes(priv_rl_bytes)
        self.sig_rl = SigRl.from_bytes(sig_rl_bytes)
        self.group_revoked = bool(group_revoked)
        self.min_qe_svn = int(min_qe_svn)


def _status_with_scan(state: _VerificationState,
                      quote: Quote) -> Tuple[str, int]:
    """`IasService._status_for` over a snapshot, plus the modelled number
    of revocation-list entries scanned (full-list linear cost)."""
    if state.group_revoked:
        return QuoteStatus.GROUP_REVOKED, 0
    try:
        signature = quote.signature()
        state.group.verify(signature, quote.body_bytes())
    except (QuoteError, ReproError):
        return QuoteStatus.SIGNATURE_INVALID, 0
    scanned = len(state.priv_rl)
    if state.priv_rl.matches(signature,
                             state.group.derive_member_secret) is not None:
        return QuoteStatus.KEY_REVOKED, scanned
    scanned += len(state.sig_rl)
    if state.sig_rl.matches(signature):
        return QuoteStatus.SIGNATURE_REVOKED, scanned
    if quote.qe_svn < state.min_qe_svn:
        return QuoteStatus.GROUP_OUT_OF_DATE, scanned
    return QuoteStatus.OK, scanned


class _BatchScan:
    """Amortized revocation-list lookups for one batch.

    The SigRL scan is ``(basename, pseudonym)`` equality, so one set
    covers every quote in the batch; the PrivRL scan re-derives each
    revoked key's pseudonym *per basename*, so one table per distinct
    basename covers the batch (deployments pin one basename, so in
    practice that is one table).  Batch scan cost is therefore
    O(|RL| + B) instead of the sequential O(B x |RL|).
    """

    def __init__(self, state: _VerificationState) -> None:
        self._state = state
        self.sig_entries = set(state.sig_rl.entries)
        self._priv_tables: Dict[bytes, Dict[bytes, bytes]] = {}
        self.build_scans = len(state.sig_rl)

    def _priv_table(self, basename: bytes) -> Dict[bytes, bytes]:
        table = self._priv_tables.get(basename)
        if table is None:
            table = {}
            for member_id in self._state.priv_rl.revoked_member_ids:
                secret = self._state.group.derive_member_secret(member_id)
                table[pseudonym(secret, basename)] = member_id
            self._priv_tables[basename] = table
            self.build_scans += len(self._state.priv_rl)
        return table

    def status_for(self, quote: Quote) -> Tuple[str, int]:
        """Verdict-identical to :func:`_status_with_scan`, but each
        revocation check is one hash probe (cost counted as 1)."""
        state = self._state
        if state.group_revoked:
            return QuoteStatus.GROUP_REVOKED, 0
        try:
            signature = quote.signature()
            state.group.verify(signature, quote.body_bytes())
        except (QuoteError, ReproError):
            return QuoteStatus.SIGNATURE_INVALID, 0
        scanned = 1
        if signature.pseudonym in self._priv_table(signature.basename):
            return QuoteStatus.KEY_REVOKED, scanned
        scanned += 1
        if (signature.basename, signature.pseudonym) in self.sig_entries:
            return QuoteStatus.SIGNATURE_REVOKED, scanned
        if quote.qe_svn < state.min_qe_svn:
            return QuoteStatus.GROUP_OUT_OF_DATE, scanned
        return QuoteStatus.OK, scanned


# --------------------------------------------------------------------------
# Kernels
# --------------------------------------------------------------------------


def verify_quote_kernel(quote_bytes: bytes, nonce: str,
                        sigrl_snapshot: bytes, report_key_bytes: bytes,
                        report_id: str = "avr-00000000",
                        timestamp: int = 0) -> Tuple[bytes, str, int]:
    """Verify one quote against a verification snapshot.

    ``report_id`` and ``timestamp`` are assigned by the caller (the IAS
    owns the counter and the clock; the kernel owns only the math), so
    the returned AVR JSON is byte-identical to
    :meth:`repro.ias.service.IasService.verify_quote`.

    Returns ``(avr_json_bytes, quote_status, rl_entries_scanned)``.
    """
    state = _VerificationState(sigrl_snapshot)
    quote = Quote.from_bytes(quote_bytes)
    status, scanned = _status_with_scan(state, quote)
    avr = sign_report(
        EcPrivateKey.from_bytes(report_key_bytes),
        report_id=report_id,
        timestamp=int(timestamp),
        quote_status=status,
        quote_body_hex=quote.body_bytes().hex(),
        nonce=nonce,
    )
    return avr.to_json(), status, scanned


def verify_quotes_kernel(batch: Sequence[Tuple[bytes, str, str, int]],
                         sigrl_snapshot: bytes,
                         report_key_bytes: bytes
                         ) -> Tuple[Tuple[Tuple[bytes, str], ...], int]:
    """Verify a batch of quotes with one amortized revocation-list scan.

    ``batch`` rows are ``(quote_bytes, nonce, report_id, timestamp)``.
    Verdicts and AVR bytes are identical to calling
    :func:`verify_quote_kernel` per row; only the scan cost changes.

    Returns ``((avr_json_bytes, quote_status), ...)`` plus the total
    modelled revocation-list entries scanned.
    """
    state = _VerificationState(sigrl_snapshot)
    scan = _BatchScan(state)
    report_key = EcPrivateKey.from_bytes(report_key_bytes)
    results: List[Tuple[bytes, str]] = []
    scanned = 0
    for quote_bytes, nonce, report_id, timestamp in batch:
        quote = Quote.from_bytes(quote_bytes)
        status, probes = scan.status_for(quote)
        scanned += probes
        avr = sign_report(
            report_key,
            report_id=report_id,
            timestamp=int(timestamp),
            quote_status=status,
            quote_body_hex=quote.body_bytes().hex(),
            nonce=nonce,
        )
        results.append((avr.to_json(), status))
    return tuple(results), scanned + scan.build_scans


def sign_cert_kernel(tbs_bytes: bytes, ca_key_bytes: bytes,
                     serial: int) -> bytes:
    """Sign a to-be-signed certificate body with the CA key.

    ``serial`` is the caller's reserved serial for this certificate — it
    does not enter the signature (RFC 6979 over ``tbs_bytes`` alone),
    but tying the dispatch to it keeps the pool's unit of work aligned
    with PR 4's reserved-serial byte-identity contract.
    """
    if not isinstance(serial, int) or serial < 0:
        raise ReproError(f"invalid reserved serial for cert-sign: {serial!r}")
    return EcPrivateKey.from_bytes(ca_key_bytes).sign(tbs_bytes)


def seal_blob_kernel(fuse_key_bytes: bytes, mrenclave: bytes, mrsigner: bytes,
                     isv_prod_id: int, isv_svn: int, plaintext_bytes: bytes,
                     policy: str, key_id: bytes, nonce: bytes) -> bytes:
    """Seal ``plaintext_bytes`` to an enclave identity.

    ``key_id`` and ``nonce`` are pre-drawn by the caller (under the
    shard lock, preserving per-shard DRBG order), so the returned blob
    is byte-identical to :func:`repro.sgx.sealing.seal`.
    """
    identity = EnclaveIdentity(mrenclave=mrenclave, mrsigner=mrsigner,
                               isv_prod_id=int(isv_prod_id),
                               isv_svn=int(isv_svn))
    blob = seal_deterministic(fuse_key_bytes, identity, plaintext_bytes,
                              policy, key_id, nonce)
    return blob.to_bytes()


# --------------------------------------------------------------------------
# KernelPool
# --------------------------------------------------------------------------

#: Errors meaning "this dispatch cannot cross the process boundary" —
#: degrade to inline, do not surface to the caller.
_FALLBACK_ERRORS = (pickle.PicklingError, BrokenProcessPool, TypeError,
                    AttributeError, OSError)

#: Live pools, reset after fork so a child never blocks on a lock or an
#: executor it inherited mid-operation from the parent.
_POOLS: "weakref.WeakSet[KernelPool]" = weakref.WeakSet()


def _reset_pools_after_fork() -> None:
    for pool in list(_POOLS):
        pool._reset_after_fork()


if hasattr(os, "register_at_fork"):  # POSIX only; harmless to skip elsewhere
    os.register_at_fork(after_in_child=_reset_pools_after_fork)


class KernelPool:
    """A lazily-spawned, fork-safe process pool for kernel dispatch.

    - ``workers=0`` (the default) never spawns anything: every ``run``
      executes the kernel inline, so the pool is safe to thread through
      code paths unconditionally.
    - The executor is created on first dispatch and tagged with the
      owning PID; a forked child discards the inherited executor (its
      queue-management threads did not survive the fork) and lazily
      spawns its own, and an ``os.register_at_fork`` hook re-arms the
      internal lock so a fork taken while another thread held it cannot
      deadlock the child.
    - Unpicklable work and broken pools fall back to inline execution;
      kernels are deterministic, so the caller cannot observe where the
      bytes were computed — only the wall clock can.

    Lock discipline: ``_lock`` (domain ``kernel_pool``) is a leaf held
    only for lifecycle and counter updates — never across ``submit`` or
    ``future.result()``, so workers (and waiters) hold no locks.
    """

    def __init__(self, workers: int = 0, label: str = "kernels") -> None:
        self.label = label
        self.workers = max(0, int(workers))
        self._lock = make_lock("kernel_pool")
        self._executor: Optional[ProcessPoolExecutor] = None
        self._owner_pid = os.getpid()
        self._broken = False
        self.dispatched = 0
        self.inline_calls = 0
        self.fallbacks = 0
        _POOLS.add(self)

    # ------------------------------------------------------------ lifecycle

    def _executor_for_dispatch(self) -> Optional[ProcessPoolExecutor]:
        if self.workers <= 0:
            return None
        with self._lock:
            if self._broken:
                return None
            pid = os.getpid()
            if self._executor is not None and pid != self._owner_pid:
                # Forked child: the inherited executor's plumbing is gone.
                self._executor = None
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
                self._owner_pid = pid
            return self._executor

    def _reset_after_fork(self) -> None:
        # Runs in the child immediately after fork: replace the lock (the
        # parent copy may be held by a thread that does not exist here)
        # and drop the inherited executor without touching it.
        self._lock = make_lock("kernel_pool")
        self._executor = None
        self._owner_pid = os.getpid()

    def _mark_broken(self) -> None:
        with self._lock:
            self.fallbacks += 1
            self._broken = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Tear down worker processes (idempotent; pool reverts to lazy)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    # ------------------------------------------------------------- dispatch

    def run(self, kernel, *args):
        """Run ``kernel(*args)`` in a worker, or inline on any fallback."""
        executor = self._executor_for_dispatch()
        if executor is None:
            with self._lock:
                self.inline_calls += 1
            return kernel(*args)
        try:
            # result() releases the GIL while the worker computes — this
            # wait is where thread-pooled callers gain real parallelism.
            result = executor.submit(kernel, *args).result()
        except _FALLBACK_ERRORS:
            self._mark_broken()
            return kernel(*args)
        with self._lock:
            self.dispatched += 1
        return result

    # ------------------------------------------- typed convenience wrappers
    #
    # Consumers (CA, IAS, KMS shards) receive a duck-typed pool and call
    # these, so none of them needs a module-level import of this module
    # (repro.core's __init__ would make that circular).

    def sign_cert(self, tbs_bytes: bytes, ca_key_bytes: bytes,
                  serial: int) -> bytes:
        """Dispatch :func:`sign_cert_kernel`."""
        return self.run(sign_cert_kernel, tbs_bytes, ca_key_bytes, serial)

    def verify_quote(self, quote_bytes: bytes, nonce: str,
                     sigrl_snapshot: bytes, report_key_bytes: bytes,
                     report_id: str, timestamp: int) -> Tuple[bytes, str, int]:
        """Dispatch :func:`verify_quote_kernel`."""
        return self.run(verify_quote_kernel, quote_bytes, nonce,
                        sigrl_snapshot, report_key_bytes, report_id,
                        timestamp)

    def verify_quotes(self, batch: Sequence[Tuple[bytes, str, str, int]],
                      sigrl_snapshot: bytes, report_key_bytes: bytes
                      ) -> Tuple[Tuple[Tuple[bytes, str], ...], int]:
        """Dispatch :func:`verify_quotes_kernel`."""
        return self.run(verify_quotes_kernel, tuple(batch), sigrl_snapshot,
                        report_key_bytes)

    def seal_blob(self, fuse_key_bytes: bytes, mrenclave: bytes,
                  mrsigner: bytes, isv_prod_id: int, isv_svn: int,
                  plaintext_bytes: bytes, policy: str, key_id: bytes,
                  nonce: bytes) -> bytes:
        """Dispatch :func:`seal_blob_kernel`."""
        return self.run(seal_blob_kernel, fuse_key_bytes, mrenclave,
                        mrsigner, isv_prod_id, isv_svn, plaintext_bytes,
                        policy, key_id, nonce)
