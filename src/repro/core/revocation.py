"""Re-attestation and revocation orchestration.

The Verification Manager can "provision or revoke authentication keys that
can be used by VNFs *as long as the container host is trustworthy*"
(paper, section 2).  :class:`ReattestationMonitor` implements the "as long
as" part: it periodically re-attests hosts and, on an appraisal failure,
distrusts the host, revokes every credential on it, and (optionally)
revokes the platform's EPID key at IAS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.host_agent import HostAgentClient
from repro.core.verification_manager import VerificationManager
from repro.errors import AttestationFailed


@dataclass
class ReattestationOutcome:
    """The result of one monitoring sweep over one host."""

    host_name: str
    trustworthy: bool
    revoked_vnfs: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)


class ReattestationMonitor:
    """Periodic trust maintenance for a fleet of hosts."""

    def __init__(self, vm: VerificationManager,
                 ias_service=None) -> None:
        self._vm = vm
        self._ias_service = ias_service
        self._hosts: Dict[str, HostAgentClient] = {}
        self.sweeps = 0

    def watch(self, host_name: str, agent: HostAgentClient) -> None:
        """Add a host to the monitored set."""
        self._hosts[host_name] = agent

    def sweep(self) -> List[ReattestationOutcome]:
        """Re-attest every watched host, revoking on failure."""
        self.sweeps += 1
        outcomes = []
        for host_name, agent in self._hosts.items():
            outcomes.append(self._check_one(host_name, agent))
        return outcomes

    def _check_one(self, host_name: str,
                   agent: HostAgentClient) -> ReattestationOutcome:
        try:
            result = self._vm.attest_host(agent, host_name)
        except AttestationFailed as exc:
            result_failures = [str(exc)]
            revoked = self._punish(host_name)
            return ReattestationOutcome(host_name, False, revoked,
                                        result_failures)
        if result.trustworthy:
            return ReattestationOutcome(host_name, True)
        revoked = self._punish(host_name)
        return ReattestationOutcome(host_name, False, revoked,
                                    list(result.failures))

    def _punish(self, host_name: str) -> List[str]:
        revoked = self._vm.distrust_host(host_name)
        if self._ias_service is not None:
            try:
                self._ias_service.revoke_platform(host_name)
            except Exception:  # noqa: BLE001 — platform may be unregistered
                pass
        return revoked
