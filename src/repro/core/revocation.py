"""Re-attestation and revocation orchestration.

The Verification Manager can "provision or revoke authentication keys that
can be used by VNFs *as long as the container host is trustworthy*"
(paper, section 2).  :class:`ReattestationMonitor` implements the "as long
as" part: it periodically re-attests hosts and, on an appraisal failure,
distrusts the host, revokes every credential on it, and (optionally)
revokes the platform's EPID key at IAS.

A sweep distinguishes two very different kinds of bad news:

* **untrustworthy** — the host answered and its evidence failed
  appraisal (or IAS rejected the quote).  Credentials are revoked
  immediately; a compromised host must not keep its keys for even one
  more sweep interval.
* **unreachable** — the attestation *transport* failed (agent down,
  network partition, IAS outage outlasting the retry budget).  That is
  an availability problem, not an integrity verdict: the host keeps its
  last-known trust status and the monitor retries on the next sweep.
  Revoking a whole rack's credentials because a switch rebooted would
  turn every network blip into a fleet-wide outage.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.host_agent import HostAgentClient
from repro.core.verification_manager import VerificationManager
from repro.errors import AttestationFailed, IasError, IasUnavailable, NetError

#: Transport-level failures that mark a host *unreachable* (kept, retried)
#: rather than *untrustworthy* (revoked).
UNREACHABLE_ERRORS = (NetError, IasUnavailable)

STATUS_TRUSTED = "trusted"
STATUS_REVOKED = "revoked"
STATUS_UNREACHABLE = "unreachable"


@dataclass
class ReattestationOutcome:
    """The result of one monitoring sweep over one host.

    Attributes:
        trustworthy: the host's trust status *after* this sweep.  For an
            unreachable host this is the last-known status, unchanged.
        reachable: False when the sweep could not complete for transport
            reasons; no verdict was reached and nothing was revoked.
        status: ``"trusted"``, ``"revoked"`` or ``"unreachable"``.
        consecutive_unreachable: how many sweeps in a row this host has
            been unreachable (0 when reachable).
    """

    host_name: str
    trustworthy: bool
    revoked_vnfs: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    reachable: bool = True
    status: str = STATUS_TRUSTED
    consecutive_unreachable: int = 0


class ReattestationMonitor:
    """Periodic trust maintenance for a fleet of hosts."""

    def __init__(self, vm: VerificationManager,
                 ias_service=None) -> None:
        self._vm = vm
        self._ias_service = ias_service
        self._hosts: Dict[str, HostAgentClient] = {}
        self._unreachable_streak: Dict[str, int] = {}
        self.sweeps = 0

    def watch(self, host_name: str, agent: HostAgentClient) -> None:
        """Add a host to the monitored set."""
        self._hosts[host_name] = agent

    def sweep(self) -> List[ReattestationOutcome]:
        """Re-attest every watched host, revoking on failure."""
        self.sweeps += 1
        outcomes = []
        for host_name, agent in self._hosts.items():
            outcomes.append(self._check_one(host_name, agent))
        return outcomes

    def unreachable_streak(self, host_name: str) -> int:
        """Consecutive sweeps ``host_name`` has been unreachable."""
        return self._unreachable_streak.get(host_name, 0)

    def _check_one(self, host_name: str,
                   agent: HostAgentClient) -> ReattestationOutcome:
        try:
            result = self._vm.attest_host(agent, host_name)
        except UNREACHABLE_ERRORS as exc:
            # Transport failed: no verdict was reached.  Keep the
            # last-known trust status and retry on the next sweep —
            # "host unreachable" is not "host untrustworthy".
            streak = self._unreachable_streak.get(host_name, 0) + 1
            self._unreachable_streak[host_name] = streak
            return ReattestationOutcome(
                host_name,
                trustworthy=self._vm.host_trusted(host_name),
                failures=[f"host unreachable (retrying): "
                          f"{type(exc).__name__}: {exc}"],
                reachable=False,
                status=STATUS_UNREACHABLE,
                consecutive_unreachable=streak,
            )
        except AttestationFailed as exc:
            self._unreachable_streak.pop(host_name, None)
            revoked = self._punish(host_name)
            return ReattestationOutcome(host_name, False, revoked,
                                        [str(exc)], status=STATUS_REVOKED)
        self._unreachable_streak.pop(host_name, None)
        if result.trustworthy:
            return ReattestationOutcome(host_name, True,
                                        status=STATUS_TRUSTED)
        revoked = self._punish(host_name)
        return ReattestationOutcome(host_name, False, revoked,
                                    list(result.failures),
                                    status=STATUS_REVOKED)

    def _punish(self, host_name: str) -> List[str]:
        revoked = self._vm.distrust_host(host_name)
        if self._ias_service is not None:
            # The platform may simply never have been registered with
            # this IAS instance; that must not mask the (already
            # completed) local revocation.  Anything else propagates.
            with contextlib.suppress(IasError):
                self._ias_service.revoke_platform(host_name)
            # EPID revocation at IAS changes the verdict future submissions
            # of this platform's old quotes would get, so any memoised
            # verdict for the host is now stale.  ``distrust_host`` already
            # flushed the cache; this keeps the invariant even if the
            # distrust/IAS ordering ever changes.
            self._vm.verification_cache.invalidate_subject(host_name)
        return revoked
