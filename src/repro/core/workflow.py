"""The executable Figure 1: a complete deployment in one object.

:class:`Deployment` assembles every box in the paper's architecture
diagram — network controller with its northbound endpoints, forwarding
plane, IAS, Verification Manager, an SGX-capable container host running
IMA, containerized VNFs with their credential enclaves — on one simulated
network with one virtual clock, and :meth:`Deployment.run_workflow`
executes steps 1-6 for every VNF, returning the measured trace.

Examples and benchmarks build on this class; its constructor knobs cover
every experimental axis (TPM rooting, controller security modes, the
keystore-vs-CA validation model, SGX cost parameters, fleet size).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.containers.host import ContainerHost
from repro.containers.image import build_image
from repro.containers.registry import Registry
from repro.core.appraisal import ExpectedValues
from repro.core.attestation_enclave import AttestationEnclave
from repro.core.credential_enclave import CredentialEnclave, EnclaveBackedClient
from repro.core.enrollment import EnrollmentSession, StepTiming
from repro.core.host_agent import HostAgent, HostAgentClient
from repro.core.policy import DeploymentPolicy
from repro.core.verification_manager import VerificationManager
from repro.crypto.keys import generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.errors import ReproError, VnfSgxError
from repro.ias.api import IasClient, IasHttpService
from repro.ias.service import IasService
from repro.net.address import Address
from repro.net.faults import FaultPlan
from repro.net.retry import RetryPolicy
from repro.net.simnet import Network
from repro.pki.keystore import Keystore
from repro.pki.name import DistinguishedName
from repro.sdn.controller import FloodlightController
from repro.sdn.northbound import (
    MODE_HTTP,
    MODE_HTTPS,
    MODE_RATLS,
    MODE_TRUSTED,
    NorthboundEndpoint,
    keystore_validator,
)
from repro.sdn.switch import Switch
from repro.sdn.vnf import VnfRestClient
from repro.sgx.ecall import CostModel
from repro.tls import TlsConfig

CONTROLLER_HOST = "controller"
IAS_ADDRESS = Address("ias.intel.example", 443)
MODE_PORTS = {MODE_HTTP: 8080, MODE_HTTPS: 8443, MODE_TRUSTED: 9443,
              MODE_RATLS: 10443}

#: Where the Verification Manager serves ``/metrics`` and ``/traces``
#: once telemetry is enabled.
TELEMETRY_ADDRESS = Address("verification-manager", 9100)

#: Where the key-manager REST API listens once :meth:`Deployment.build_kms`
#: is called with ``serve=True``.
KMS_ADDRESS = Address("verification-manager", 7100)

VALIDATION_CA = "ca"
VALIDATION_KEYSTORE = "keystore"


@dataclass
class WorkflowTrace:
    """Everything :meth:`Deployment.run_workflow` measured.

    Attributes:
        per_vnf: per-step timings of every *successfully* enrolled VNF.
        failed: VNF name -> ``"ExceptionType: message"`` for every VNF
            whose enrollment failed; the fleet run continues past them
            (partial-failure semantics — one bad host must not abort a
            deployment of thousands).
        simulated_seconds / wall_seconds / clock_charges: totals.
    """

    per_vnf: Dict[str, List[StepTiming]] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    clock_charges: Dict[str, float] = field(default_factory=dict)

    def step_totals(self) -> Dict[str, float]:
        """Simulated seconds per workflow step, summed over VNFs."""
        totals: Dict[str, float] = {}
        for timings in self.per_vnf.values():
            for timing in timings:
                totals[timing.step] = (
                    totals.get(timing.step, 0.0) + timing.simulated_seconds
                )
        return totals

    @property
    def fully_succeeded(self) -> bool:
        """True when every VNF in the run enrolled."""
        return not self.failed


class Deployment:
    """One fully wired SDN deployment (the paper's Figure 1).

    Args:
        seed: DRBG seed; equal seeds give bit-identical runs.
        vnf_count: number of VNFs (the paper's figure shows two).
        with_tpm: enable the TPM-rooted IMA configuration (paper §4).
        modes: which northbound security modes to serve.
        client_validation: ``"ca"`` (the paper's design) or ``"keystore"``
            (stock Floodlight) for the trusted mode.
        cost_model: SGX transition cost parameters.
        retry_policy: optional :class:`~repro.net.retry.RetryPolicy`
            threaded through the whole pipeline (IAS client, host-agent
            stubs, enrollment steps); ``None`` keeps the zero-tolerance
            behaviour.  Jitter is drawn from a dedicated DRBG derived
            from ``seed``, so retried runs stay bit-reproducible.
    """

    def __init__(self, seed: bytes = b"vnf-sgx-deployment",
                 vnf_count: int = 2, with_tpm: bool = False,
                 modes: Tuple[str, ...] = (MODE_HTTP, MODE_HTTPS,
                                           MODE_TRUSTED),
                 client_validation: str = VALIDATION_CA,
                 cost_model: Optional[CostModel] = None,
                 host_count: int = 1,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if client_validation not in (VALIDATION_CA, VALIDATION_KEYSTORE):
            raise VnfSgxError(
                f"unknown validation model {client_validation!r}"
            )
        if host_count < 1:
            raise VnfSgxError("need at least one container host")
        self._seed = bytes(seed)
        self.rng = HmacDrbg(seed)
        self.network = Network()
        self.clock = self.network.clock
        self.client_validation = client_validation
        self.retry_policy: Optional[RetryPolicy] = None
        self._retry_rng: Optional[HmacDrbg] = None

        # --- Intel Attestation Service -------------------------------
        self.ias = IasService(rng=self.rng, now=self.clock.now_seconds)
        self.ias_http = IasHttpService(self.ias, self.network, IAS_ADDRESS,
                                       rng=self.rng)
        self.ias_client = IasClient(
            self.network, IAS_ADDRESS, self.ias_http.ias_truststore,
            self.ias.report_signing_public_key, rng=self.rng,
        )

        # --- Verification Manager ------------------------------------
        self.expected_values = ExpectedValues()
        self.policy = DeploymentPolicy(require_tpm=with_tpm)
        self.vm = VerificationManager(
            self.ias_client, self.policy, self.expected_values,
            now=self.clock.now, rng=self.rng, clock=self.clock,
        )

        # --- Controller + forwarding plane ----------------------------
        self.controller = FloodlightController()
        switch_a, switch_b = Switch("00:00:01"), Switch("00:00:02")
        self.controller.register_switch(switch_a)
        self.controller.register_switch(switch_b)
        self.controller.topology.add_link("00:00:01", 3, "00:00:02", 3)
        self.controller.topology.attach_host("h1", "00:00:01", 1)
        self.controller.topology.attach_host("h2", "00:00:02", 1)

        self.server_key = generate_keypair(self.rng)
        self.server_cert = self.vm.ca.issue_server_certificate(
            DistinguishedName(CONTROLLER_HOST),
            self.server_key.public.to_bytes(),
            now=self.clock.now_seconds(),
        )
        server_key, server_cert = self.server_key, self.server_cert
        self.keystore = Keystore()
        self.endpoints: Dict[str, NorthboundEndpoint] = {}
        for mode in modes:
            address = Address(CONTROLLER_HOST, MODE_PORTS[mode])
            tls_config = None
            if mode != MODE_HTTP:
                tls_config = TlsConfig(
                    certificate_chain=[server_cert],
                    private_key=server_key,
                    truststore=self.vm.controller_truststore(),
                    rng=self.rng,
                    now=self.clock.now_seconds,
                )
                if (mode == MODE_TRUSTED
                        and client_validation == VALIDATION_KEYSTORE):
                    tls_config.client_validator = keystore_validator(
                        self.keystore
                    )
                if mode == MODE_TRUSTED:
                    self.vm.subscribe_crl(tls_config)
            self.endpoints[mode] = NorthboundEndpoint(
                self.controller, self.network, address, mode, tls_config
            )

        # --- Container hosts ------------------------------------------
        self.vendor_key = generate_keypair(self.rng)
        self.hosts: List[ContainerHost] = []
        self.agents: Dict[str, HostAgent] = {}
        self.agent_clients: Dict[str, HostAgentClient] = {}
        self.attestation_enclaves: Dict[str, AttestationEnclave] = {}
        for index in range(1, host_count + 1):
            host = ContainerHost(
                f"container-host-{index}", clock=self.clock, rng=self.rng,
                with_tpm=with_tpm, cost_model=cost_model,
            )
            host.boot()
            for path in host.filesystem.list_files():
                self.expected_values.allow_content(
                    path, host.filesystem.read_file(path)
                )
            self.ias.register_platform(host.platform)
            if with_tpm:
                self.vm.register_host_tpm(host.name, host.tpm.aik_public)
            attestation = AttestationEnclave(host, self.vendor_key)
            agent = HostAgent(host, attestation, self.network)
            self.hosts.append(host)
            self.attestation_enclaves[host.name] = attestation
            self.agents[host.name] = agent
            self.agent_clients[host.name] = HostAgentClient(
                self.network, agent.address
            )

        # Telemetry is opt-in; see enable_telemetry().
        self.telemetry = None
        self.telemetry_endpoint = None

        # The key manager is opt-in; see build_kms().
        self.kms = None
        self.kms_endpoint = None

        # The RA-TLS attested channel is opt-in; see build_ratls().
        self.ratls_verifier = None
        self.ratls_endpoint = None
        self.ratls_ias_pool = None

        # The trusted controller fabric is opt-in; see build_fabric().
        self.fabric = None

        # Single-host compatibility aliases (the common configuration).
        self.host = self.hosts[0]
        self.attestation_enclave = self.attestation_enclaves[self.host.name]
        self.agent = self.agents[self.host.name]
        self.agent_client = self.agent_clients[self.host.name]

        # --- VNF containers and enclaves ------------------------------
        self.registry = Registry()
        self.vnf_names: List[str] = []
        self.vnf_host: Dict[str, ContainerHost] = {}
        self.credential_enclaves: Dict[str, CredentialEnclave] = {}
        for index in range(1, vnf_count + 1):
            vnf_name = f"vnf-{index}"
            host = self.hosts[(index - 1) % host_count]
            image = build_image(
                vnf_name, "1.0",
                {"/usr/bin/vnf": f"vnf-binary-{vnf_name}".encode()},
            )
            self.registry.push(image)
            container = host.deploy(self.registry, image.reference,
                                    labels={"vnf": vnf_name})
            self.expected_values.allow_image(container.root_path, image)
            enclave = CredentialEnclave(host, self.vendor_key,
                                        self.network, vnf_name)
            self.agents[host.name].register_vnf(enclave)
            self.credential_enclaves[vnf_name] = enclave
            self.vnf_names.append(vnf_name)
            self.vnf_host[vnf_name] = host

        if retry_policy is not None:
            self.set_retry_policy(retry_policy)

    # ----------------------------------------------------------- resilience

    def set_retry_policy(self, policy: Optional[RetryPolicy]) -> None:
        """(Re)configure retries on every client in the deployment.

        Threads ``policy`` through the IAS client, every host-agent stub,
        and (via :meth:`enroll`) the per-step enrollment retry layer.
        Backoff jitter comes from a dedicated DRBG derived from the
        deployment seed, so the main ``rng`` stream — and therefore every
        key, nonce and quote — is unchanged by retrying.  ``None``
        restores the zero-tolerance default.
        """
        self.retry_policy = policy
        self._retry_rng = (
            HmacDrbg(self._seed, personalization=b"retry-jitter")
            if policy is not None else None
        )
        self.ias_client.configure_retries(policy, rng=self._retry_rng)
        for client in self.agent_clients.values():
            client.configure_retries(policy, rng=self._retry_rng)

    def install_faults(self, plan: Optional[FaultPlan]) -> None:
        """Install (or clear, with ``None``) a fault plan on the network."""
        self.network.install_faults(plan)

    # ------------------------------------------------------------ telemetry

    def enable_telemetry(self, registry=None, serve: bool = True,
                         address: Address = TELEMETRY_ADDRESS):
        """Wire the observability subsystem through the whole deployment.

        Creates a :class:`repro.obs.Telemetry` on this deployment's
        virtual clock, attaches it to the Verification Manager (and its
        audit log), the IAS service, every northbound endpoint, every
        host's transition accountant, and the process-wide TLS client
        hook; then (``serve=True``) mounts ``GET /metrics`` and ``GET
        /traces`` at ``address`` on the simulated network.

        Observation never advances the virtual clock, so enabling
        telemetry does not change workflow timings; only an actual scrape
        charges network time, like any other traffic.

        Returns the :class:`~repro.obs.Telemetry` (idempotent: repeated
        calls return the existing one).
        """
        if self.telemetry is not None:
            return self.telemetry
        from repro.obs import MetricsRegistry, Telemetry, TelemetryEndpoint
        from repro.tls import client as tls_client

        # A deployment gets its own registry by default so two deployments
        # in one process (e.g. parallel experiments) never cross-count;
        # pass repro.obs.default_registry() to share the process-wide one.
        telemetry = Telemetry(
            registry=registry if registry is not None else MetricsRegistry(),
            now=self.clock.now,
        )
        self.vm.instrument(telemetry)
        self.ias.instrument(telemetry)
        self.ias_client.instrument(telemetry)
        for client in self.agent_clients.values():
            client.instrument(telemetry)
        for endpoint in self.endpoints.values():
            endpoint.instrument(telemetry)
        for host in self.hosts:
            host.platform.accountant.instrument(telemetry,
                                                platform=host.name)
        tls_client.instrument(telemetry)
        if self.kms_endpoint is not None:
            self.kms_endpoint.instrument(telemetry)
        elif self.kms is not None:
            self.kms.instrument(telemetry)
        if self.fabric is not None:
            self.fabric.instrument(telemetry)
        if serve:
            self.telemetry_endpoint = TelemetryEndpoint(
                telemetry, self.network, address
            )
        self.telemetry = telemetry
        return telemetry

    def disable_telemetry(self) -> None:
        """Detach every telemetry hook and stop serving ``/metrics``."""
        if self.telemetry is None:
            return
        from repro.tls import client as tls_client

        self.vm.instrument(None)
        self.ias.instrument(None)
        self.ias_client.instrument(None)
        for client in self.agent_clients.values():
            client.instrument(None)
        for endpoint in self.endpoints.values():
            endpoint.instrument(None)
        for host in self.hosts:
            host.platform.accountant.instrument(None)
        tls_client.instrument(None)
        if self.kms_endpoint is not None:
            self.kms_endpoint.instrument(None)
        elif self.kms is not None:
            self.kms.instrument(None)
        if self.fabric is not None:
            self.fabric.instrument(None)
        if self.telemetry_endpoint is not None:
            self.telemetry_endpoint.close()
            self.telemetry_endpoint = None
        self.telemetry = None

    def scrape_metrics(self) -> str:
        """``GET /metrics`` over the simulated network (telemetry must be
        enabled with ``serve=True``)."""
        from repro.obs import scrape_text

        if self.telemetry_endpoint is None:
            raise VnfSgxError("telemetry endpoint is not serving")
        return scrape_text(self.network, self.telemetry_endpoint.address)

    def scrape_traces(self) -> list:
        """``GET /traces`` over the simulated network, parsed from JSON."""
        from repro.obs import scrape_traces

        if self.telemetry_endpoint is None:
            raise VnfSgxError("telemetry endpoint is not serving")
        return scrape_traces(self.network, self.telemetry_endpoint.address)

    # ---------------------------------------------------------- key manager

    def build_kms(self, shard_count: int = 4, seed: bytes = b"kms-service",
                  serve: bool = True, address: Address = KMS_ADDRESS,
                  seal_workers: int = 0):
        """Attach a :class:`repro.kms.KeyManagerService` to this deployment.

        The service hangs off the Verification Manager's CA (tenant
        tokens are derived from enrolled credentials) and parks its shard
        identities in the deployment keystore, but draws all randomness
        from its *own* DRBG stream — attaching a KMS does not perturb the
        deployment's enrollment transcripts.  With ``serve=True`` the
        REST endpoint listens at ``address`` on the simulated network.
        ``seal_workers > 0`` runs the sealing AEAD in a shared
        :class:`~repro.core.kernels.KernelPool` (blob bytes unchanged —
        the E13 wall-clock axis).
        """
        from repro.kms import KeyManagerService, KmsEndpoint

        self.kms = KeyManagerService(
            self.vm.ca, self.clock, seed=seed, shard_count=shard_count,
            keystore=self.keystore, seal_workers=seal_workers,
        )
        if serve:
            self.kms_endpoint = KmsEndpoint(self.kms, self.network, address)
            if self.telemetry is not None:
                self.kms_endpoint.instrument(self.telemetry)
        elif self.telemetry is not None:
            self.kms.instrument(self.telemetry)
        return self.kms

    def kms_client(self, tenant: str, token: str, source_host: str = ""):
        """A :class:`repro.kms.KmsClient` for one tenant (defaults to
        originating from the first container host)."""
        from repro.kms import KmsClient

        if self.kms_endpoint is None:
            raise VnfSgxError("KMS endpoint is not serving; call build_kms()")
        return KmsClient(self.network, self.kms_endpoint.address, tenant,
                         token, source_host or self.host.name)

    # --------------------------------------------------------------- RA-TLS

    def build_ratls(self, address: Optional[Address] = None,
                    pooled_ias: bool = True):
        """Serve the RA-TLS northbound mode (opt-in, idempotent).

        Creates a :class:`~repro.tls.ratls.RatlsVerifier` wired to the
        Verification Manager's IAS path and policy, attaches it to a
        dedicated session cache (so revocation can evict attested
        sessions), and mounts a ``ratls-https`` northbound endpoint whose
        client validation is the verifier.  Returns the verifier.

        With ``pooled_ias`` (the default) the Verification Manager's IAS
        client is swapped for a :class:`~repro.core.fleet.PooledIasClient`
        for the endpoint's lifetime: the verifier is a long-lived
        controller-side service attesting many handshakes, exactly the
        amortization the fleet scheduler applies per run (and, per
        experiment E12, byte-identical to per-verify dialing).
        """
        if self.ratls_verifier is not None:
            return self.ratls_verifier
        from repro.tls import SessionCache

        verifier = self.vm.ratls_verifier()
        session_cache = SessionCache()
        verifier.attach_session_cache(session_cache)
        if pooled_ias:
            from repro.core.fleet import PooledIasClient

            pool = PooledIasClient(
                self.network, IAS_ADDRESS, self.ias_http.ias_truststore,
                self.ias.report_signing_public_key, rng=self.rng,
            )
            if self.retry_policy is not None:
                pool.configure_retries(self.retry_policy,
                                       rng=self._retry_rng)
            if self.telemetry is not None:
                pool.instrument(self.telemetry)
            self.vm.swap_ias_client(pool)
            self.ratls_ias_pool = pool
        address = address or Address(CONTROLLER_HOST, MODE_PORTS[MODE_RATLS])
        tls_config = TlsConfig(
            certificate_chain=[self.server_cert],
            private_key=self.server_key,
            client_validator=verifier.validate,
            resumption_validator=verifier.resumable,
            session_cache=session_cache,
            rng=self.rng,
            now=self.clock.now_seconds,
        )
        self.ratls_endpoint = NorthboundEndpoint(
            self.controller, self.network, address, MODE_RATLS, tls_config
        )
        self.endpoints[MODE_RATLS] = self.ratls_endpoint
        if self.telemetry is not None:
            self.ratls_endpoint.instrument(self.telemetry)
        self.ratls_verifier = verifier
        return verifier

    def enroll_ratls(self, vnf_name: str):
        """Enroll one VNF over the RA-TLS attested channel; returns the
        completed :class:`~repro.core.ratls_enrollment.RatlsEnrollmentSession`.

        Credential preparation is host-local (no Verification Manager
        round trips); the attestation happens inside the first controller
        handshake, verified by the endpoint's
        :class:`~repro.tls.ratls.RatlsVerifier`.
        """
        from repro.core.ratls_enrollment import RatlsEnrollmentSession

        verifier = self.build_ratls()
        anchors = tuple(
            anchor.to_bytes()
            for anchor in self.vm.controller_truststore().anchors()
        )
        session = RatlsEnrollmentSession(
            enclave=self.credential_enclaves[vnf_name],
            verifier=verifier,
            basename=self.policy.basename,
            anchors=anchors,
            controller_address=str(self.controller_address(MODE_RATLS)),
            sim_now=self.clock.now,
            telemetry=self.telemetry,
        )
        with (self.telemetry.span("ratls-enrollment", vnf=vnf_name)
              if self.telemetry is not None else nullcontext()):
            session.run(self.enclave_client(vnf_name))
        return session

    # ----------------------------------------------------- trusted fabric

    def build_fabric(self, replica_count: int = 3,
                     endpoint_count: int = 0):
        """Grow the single controller into a trusted fabric (opt-in,
        idempotent): ``replica_count`` controller replicas sharing this
        deployment's topology, with the existing controller wrapped as
        rank 0 and every CA trust anchor replicated to every replica's
        keystore.  Returns the :class:`~repro.sdn.fabric.TrustedFabric`.

        The fabric draws no randomness and consumes no CA serials, so
        building one leaves every credential the deployment issues
        byte-identical to the single-controller path (gated in E15).
        """
        if self.fabric is not None:
            return self.fabric
        from repro.sdn.fabric import TrustedFabric

        fabric = TrustedFabric(
            self.network, replica_count=replica_count,
            topology=self.controller.topology,
            primary_controller=self.controller,
            vm=self.vm,
        )
        if self.telemetry is not None:
            fabric.instrument(self.telemetry)
        for anchor in self.vm.controller_truststore().anchors():
            fabric.anchor_ca(anchor.subject.common_name, anchor.to_bytes())
        if endpoint_count:
            fabric.add_endpoints(endpoint_count)
        self.fabric = fabric
        return fabric

    def enroll_fabric(self, vnf_name: str) -> EnrollmentSession:
        """Enroll one VNF through the fabric: the standard steps 1-6,
        then fabric-wide replication of the issued credential (keyed by
        the VNF's container host, so :meth:`~repro.sdn.fabric.
        TrustedFabric.distrust_host` can revoke it)."""
        fabric = self.build_fabric()
        session = self.enroll(vnf_name)
        fabric.submit_credential(
            vnf_name,
            self.vm.issued_certificate(vnf_name).to_bytes(),
            host=self.vnf_host[vnf_name].name,
        )
        return session

    # ------------------------------------------------------------ accessors

    def controller_address(self, mode: str = MODE_TRUSTED) -> Address:
        """The northbound address serving ``mode``."""
        return Address(CONTROLLER_HOST, MODE_PORTS[mode])

    def enclave_client(self, vnf_name: str) -> EnclaveBackedClient:
        """The SGX-protected controller client of one VNF."""
        return self.credential_enclaves[vnf_name].client

    def baseline_client(self, mode: str = MODE_HTTPS,
                        client_chain=None, client_key=None) -> VnfRestClient:
        """An unprotected (no-enclave) client for comparison experiments."""
        return VnfRestClient(
            self.network, self.controller_address(mode), self.host.name,
            mode, truststore=self.vm.controller_truststore(),
            client_chain=client_chain, client_key=client_key, rng=self.rng,
        )

    # -------------------------------------------------------------- running

    def enroll(self, vnf_name: str) -> EnrollmentSession:
        """Run steps 1-6 for one VNF; returns the completed session."""
        host = self.vnf_host[vnf_name]
        session = EnrollmentSession(
            vm=self.vm,
            agent=self.agent_clients[host.name],
            host_name=host.name,
            vnf_name=vnf_name,
            controller_address=str(self.controller_address(MODE_TRUSTED)),
            sim_now=self.clock.now,
            telemetry=self.telemetry,
            retry_policy=self.retry_policy,
            clock=self.clock,
            retry_rng=self._retry_rng,
        )
        with (self.telemetry.span("enrollment", vnf=vnf_name,
                                  host=host.name)
              if self.telemetry is not None else nullcontext()):
            session.attest_host()
            session.provision()
            if self.client_validation == VALIDATION_KEYSTORE:
                # Stock Floodlight: each new credential needs a keystore
                # entry before the first connection; in CA mode this update
                # simply never happens (the point of experiment E3).
                self.keystore.add_trusted(
                    vnf_name, self.vm.issued_certificate(vnf_name)
                )
            session.connect(self.enclave_client(vnf_name))
        return session

    def enroll_fleet(self, vnf_names: Optional[List[str]] = None,
                     workers: int = 4,
                     retry_policy: Optional[RetryPolicy] = None,
                     pooled_ias: bool = True,
                     processes: int = 0,
                     ias_batch_window: float = 0.002):
        """Enroll many VNFs across a bounded worker pool.

        The pooled path amortizes what the serial loop repeats per VNF:
        each distinct host is attested exactly once (single-flight) and
        all IAS verifications share one persistent connection.  Serials
        are reserved in submission order and key material comes from
        per-VNF DRBGs, so the issued certificates are byte-identical to
        a serial :meth:`enroll` loop's (experiment E12 asserts this).

        ``processes > 0`` additionally dispatches the CPU-bound kernels
        (EPID quote verification, certificate signing) to a
        :class:`~repro.core.kernels.KernelPool` of worker processes and
        batches concurrent IAS verifications into single wire exchanges
        (window ``ias_batch_window`` simulated seconds) — the
        multi-core axis of E12.  Certificates stay byte-identical.

        Returns a :class:`repro.core.fleet.FleetReport` with
        partial-failure semantics mirroring :meth:`run_workflow`.
        """
        from repro.core.fleet import FleetScheduler

        scheduler = FleetScheduler(
            self, workers=workers, retry_policy=retry_policy,
            pooled_ias=pooled_ias, processes=processes,
            ias_batch_window=ias_batch_window,
        )
        return scheduler.enroll(vnf_names)

    def run_workflow(self) -> WorkflowTrace:
        """Execute the full Figure 1 workflow for every VNF.

        Partial-failure semantics: one VNF whose enrollment fails (host
        down, IAS outage outlasting the retry budget, appraisal
        rejection, ...) is recorded in :attr:`WorkflowTrace.failed` and
        the fleet run continues — it does not abort the deployment.
        Per-VNF enrollment is delegated to :meth:`enroll`, so a single
        enrollment and a fleet run take exactly the same code path.
        """
        tel = self.telemetry
        trace = WorkflowTrace()
        sim_start = self.clock.now()
        wall_start = time.perf_counter()
        self.clock.reset_charges()
        with (tel.span("figure1-workflow", vnfs=len(self.vnf_names))
              if tel is not None else nullcontext()):
            for vnf_name in self.vnf_names:
                try:
                    session = self.enroll(vnf_name)
                except ReproError as exc:
                    trace.failed[vnf_name] = f"{type(exc).__name__}: {exc}"
                    if tel is not None:
                        tel.workflow_vnf_failures.inc()
                        span = tel.tracer.current_span()
                        if span is not None:
                            span.add_event(
                                "vnf-enrollment-failed",
                                timestamp=tel.now(), vnf=vnf_name,
                                error=trace.failed[vnf_name],
                            )
                else:
                    trace.per_vnf[vnf_name] = list(session.timings)
        if tel is not None:
            tel.workflows.inc()
        trace.simulated_seconds = self.clock.now() - sim_start
        trace.wall_seconds = time.perf_counter() - wall_start
        trace.clock_charges = self.clock.charges()
        return trace
