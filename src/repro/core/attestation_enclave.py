"""The Integrity Attestation Enclave (host side of Figure 1).

Runs on the container host.  On request it pulls the current IMA
measurement list (an OCALL — the list lives in untrusted kernel memory),
optionally obtains a TPM quote over PCR 10 (the paper's future-work
protocol), and produces an SGX report whose 64-byte report data binds the
hash of everything it ships plus the verifier's nonce.  The quoting
enclave turns that report into the quote the Verification Manager sends to
IAS (workflow steps 1-2).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.crypto.keys import EcPrivateKey
from repro.crypto.sha256 import sha256
from repro.sgx.enclave import Enclave, EnclaveImage
from repro.sgx.quote import Quote
from repro.sgx.report import Report, TargetInfo
from repro.sgx.sigstruct import sign_image

IMA_PCR_INDEX = 10


def attestation_report_data(iml_bytes: bytes, aggregate: bytes,
                            tpm_quote_bytes: bytes, nonce: bytes) -> bytes:
    """The 64-byte binding over everything the enclave ships."""
    head = sha256(b"iml" + iml_bytes + aggregate)
    tail = sha256(b"tpm" + tpm_quote_bytes + b"nonce" + nonce)
    return head + tail


class AttestationEnclaveBehavior:
    """The enclave's measured code.

    The host wires two OCALL hooks at construction time (through the
    factory closure): one that snapshots the IML, one that asks the TPM
    for a quote.  Both return *untrusted* data; trust is established by
    the verifier re-checking consistency and the TPM signature.
    """

    ECALLS = ("collect_evidence",)

    def __init__(self, api, read_iml: Callable[[], Tuple[bytes, bytes]],
                 read_tpm_quote: Optional[Callable[[bytes], bytes]]) -> None:
        self._api = api
        self._read_iml = read_iml
        self._read_tpm_quote = read_tpm_quote

    def collect_evidence(self, qe_target: TargetInfo,
                         nonce: bytes) -> Tuple[bytes, bytes, bytes, bytes]:
        """Snapshot the IML (+ TPM quote), return it with a bound report.

        Returns ``(iml_bytes, aggregate, tpm_quote_bytes, report_bytes)``.
        """
        iml_bytes, aggregate = self._api.ocall(self._read_iml)
        tpm_quote_bytes = b""
        if self._read_tpm_quote is not None:
            tpm_quote_bytes = self._api.ocall(self._read_tpm_quote, nonce)
        report = self._api.create_report(
            qe_target,
            attestation_report_data(iml_bytes, aggregate, tpm_quote_bytes,
                                    nonce),
        )
        return iml_bytes, aggregate, tpm_quote_bytes, report.to_bytes()


def attestation_enclave_image(host) -> EnclaveImage:
    """Build the host-bound image (OCALL hooks wired to this host)."""

    def read_iml() -> Tuple[bytes, bytes]:
        return host.ima.iml.to_bytes(), host.ima.iml.aggregate()

    read_tpm = None
    if host.tpm is not None:
        def read_tpm(nonce: bytes) -> bytes:
            return host.tpm.quote([IMA_PCR_INDEX], nonce).to_bytes()

    def factory(api):
        return AttestationEnclaveBehavior(api, read_iml, read_tpm)

    base = EnclaveImage.from_behavior_class(
        AttestationEnclaveBehavior, "integrity-attestation-enclave"
    )
    return EnclaveImage(name=base.name, version=base.version,
                        code=base.code, behavior_factory=factory)


def reference_measurement() -> bytes:
    """The MRENCLAVE a verifier should expect for this enclave."""
    from repro.sgx.measurement import measure_image

    base = EnclaveImage.from_behavior_class(
        AttestationEnclaveBehavior, "integrity-attestation-enclave"
    )
    return measure_image(base.code)


class AttestationEnclave:
    """Host-side handle: launch the enclave and collect quoted evidence."""

    def __init__(self, host, vendor_key: EcPrivateKey,
                 isv_svn: int = 1) -> None:
        self.host = host
        image = attestation_enclave_image(host)
        sigstruct = sign_image(vendor_key, image.code,
                               vendor="RISE-attestation",
                               isv_prod_id=100, isv_svn=isv_svn)
        self.enclave: Enclave = host.platform.create_enclave(
            image, sigstruct, label=f"{host.name}/attestation-enclave"
        )

    def collect_quoted_evidence(self, nonce: bytes,
                                basename: bytes) -> "QuotedEvidence":
        """Run the full evidence pipeline: ECALL + QE quote."""
        qe = self.host.platform.quoting_enclave
        iml_bytes, aggregate, tpm_quote_bytes, report_bytes = (
            self.enclave.ecall("collect_evidence", qe.target_info(), nonce)
        )
        quote = qe.generate(Report.from_bytes(report_bytes), basename)
        return QuotedEvidence(
            iml_bytes=iml_bytes,
            aggregate=aggregate,
            tpm_quote_bytes=tpm_quote_bytes,
            quote=quote,
        )


class QuotedEvidence:
    """What the host returns to the Verification Manager in step 1."""

    def __init__(self, iml_bytes: bytes, aggregate: bytes,
                 tpm_quote_bytes: bytes, quote: Quote) -> None:
        self.iml_bytes = iml_bytes
        self.aggregate = aggregate
        self.tpm_quote_bytes = tpm_quote_bytes
        self.quote = quote

    def to_bytes(self) -> bytes:
        """Serialized evidence (travels VM <- host agent)."""
        from repro.pki import der

        return der.encode([
            self.iml_bytes, self.aggregate, self.tpm_quote_bytes,
            self.quote.to_bytes(),
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "QuotedEvidence":
        """Parse serialized evidence."""
        from repro.pki import der

        iml_bytes, aggregate, tpm_quote_bytes, quote_bytes = der.decode(data)
        return cls(iml_bytes, aggregate, tpm_quote_bytes,
                   Quote.from_bytes(quote_bytes))
