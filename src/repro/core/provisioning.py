"""Credential provisioning: sealed delivery to an attested enclave.

Step 5 of Figure 1.  The delivery key is bound to attestation using the
standard SGX pattern: the credential enclave generates an ephemeral ECDH
key *inside* the enclave and binds its hash into the quote's report data;
the Verification Manager, having verified the quote, encrypts the bundle
to that key.  Only the attested enclave instance — not the host, not a
look-alike enclave — can decrypt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.ecdh import ecdh_shared_secret
from repro.crypto.gcm import AesGcm
from repro.crypto.hkdf import hkdf
from repro.crypto.keys import EcPublicKey, generate_keypair
from repro.crypto.rng import HmacDrbg, default_rng
from repro.crypto.sha256 import sha256
from repro.errors import InvalidTag, ProvisioningError
from repro.pki import der
from repro.pki.certificate import Certificate

_KDF_INFO = b"vnf-credential-provisioning-v1"


@dataclass(frozen=True)
class CredentialBundle:
    """Everything a VNF needs to authenticate to the controller."""

    private_key_bytes: bytes
    certificate_chain: Tuple[bytes, ...]   # encoded certificates, leaf first
    controller_anchors: Tuple[bytes, ...]  # encoded CA certs for server auth
    controller_address: str

    def to_bytes(self) -> bytes:
        """Serialized bundle (always transported encrypted)."""
        return der.encode([
            self.private_key_bytes,
            list(self.certificate_chain),
            list(self.controller_anchors),
            self.controller_address,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "CredentialBundle":
        """Parse a serialized bundle."""
        key, chain, anchors, address = der.decode(data)
        return cls(
            private_key_bytes=key,
            certificate_chain=tuple(chain),
            controller_anchors=tuple(anchors),
            controller_address=address,
        )

    def leaf_certificate(self) -> Certificate:
        """The client certificate."""
        if not self.certificate_chain:
            raise ProvisioningError("bundle has no certificates")
        return Certificate.from_bytes(self.certificate_chain[0])


@dataclass(frozen=True)
class ProvisioningMessage:
    """The encrypted bundle plus the VM's ephemeral public key."""

    vm_public: bytes   # SEC1 point
    nonce: bytes
    ciphertext: bytes

    def to_bytes(self) -> bytes:
        """Serialized message."""
        return der.encode([self.vm_public, self.nonce, self.ciphertext])

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProvisioningMessage":
        """Parse a serialized message."""
        vm_public, nonce, ciphertext = der.decode(data)
        return cls(vm_public, nonce, ciphertext)


def binding_hash(enclave_public_bytes: bytes, vm_nonce: bytes) -> bytes:
    """The 64-byte report-data value binding a delivery key to a quote."""
    return sha256(b"bind" + enclave_public_bytes + vm_nonce) + sha256(
        b"bind2" + enclave_public_bytes + vm_nonce
    )


def _transport_key(shared_secret: bytes, vm_public: bytes,
                   enclave_public: bytes) -> bytes:
    return hkdf(shared_secret, salt=b"", info=_KDF_INFO + vm_public
                + enclave_public, length=16)


def encrypt_bundle(enclave_public_bytes: bytes, bundle: CredentialBundle,
                   rng: Optional[HmacDrbg] = None) -> ProvisioningMessage:
    """VM side: encrypt ``bundle`` to the enclave's bound delivery key."""
    rng = rng or default_rng()
    enclave_public = EcPublicKey.from_bytes(enclave_public_bytes)
    ephemeral = generate_keypair(rng)
    shared = ecdh_shared_secret(ephemeral.scalar, enclave_public.point)
    key = _transport_key(shared, ephemeral.public.to_bytes(),
                         enclave_public_bytes)
    nonce = rng.random_bytes(12)
    ciphertext = AesGcm(key).encrypt(nonce, bundle.to_bytes(), _KDF_INFO)
    return ProvisioningMessage(
        vm_public=ephemeral.public.to_bytes(),
        nonce=nonce,
        ciphertext=ciphertext,
    )


def decrypt_bundle(enclave_private_scalar: int, enclave_public_bytes: bytes,
                   message: ProvisioningMessage) -> CredentialBundle:
    """Enclave side: recover the bundle (runs inside the enclave)."""
    vm_public = EcPublicKey.from_bytes(message.vm_public)
    shared = ecdh_shared_secret(enclave_private_scalar, vm_public.point)
    key = _transport_key(shared, message.vm_public, enclave_public_bytes)
    try:
        plaintext = AesGcm(key).decrypt(message.nonce, message.ciphertext,
                                        _KDF_INFO)
    except InvalidTag as exc:
        raise ProvisioningError(
            "provisioning message does not decrypt: wrong enclave key or "
            "tampered message"
        ) from exc
    return CredentialBundle.from_bytes(plaintext)
