"""The VNF credential enclave (TEE 1 / TEE 2 in Figure 1).

"The credentials do not leave at any point the security context of the
enclaves.  Thus, to communicate with the network controller a VNF invokes
its corresponding enclave, which then establishes a TLS session with the
network controller.  ...the security context established for each TLS
session (including the session key) does not leave the enclave."
(paper, section 2.)

Everything sensitive — the delivery key, the provisioned private key, the
TLS client and its session keys — lives in enclave-private memory and is
touched only inside ECALLs.  The network itself is reached through an
OCALL that returns a raw (untrusted) channel; TLS protects the bytes on it.
"""

from __future__ import annotations

import json
from typing import Callable, Optional, Tuple

from repro.crypto.keys import EcPrivateKey, generate_keypair
from repro.errors import ProvisioningError, SdnError
from repro.net.address import Address
from repro.net.rest import HttpParser, HttpRequest
from repro.pki.certificate import Certificate
from repro.pki.truststore import Truststore
from repro.sgx.enclave import Enclave, EnclaveImage
from repro.sgx.quote import Quote
from repro.sgx.report import Report, TargetInfo
from repro.sgx.sealing import SealedBlob
from repro.sgx.sigstruct import sign_image
from repro.core.provisioning import (
    CredentialBundle,
    ProvisioningMessage,
    binding_hash,
    decrypt_bundle,
)
from repro.sdn.vnf import ControllerOps
from repro.tls import TlsClient, TlsConfig


class CredentialEnclaveBehavior:
    """The enclave's measured code."""

    ECALLS = (
        "begin_provisioning",
        "get_binding_report",
        "complete_provisioning",
        "generate_csr",
        "install_certificate",
        "ratls_begin",
        "ratls_install",
        "has_credentials",
        "credential_subject",
        "request",
        "disconnect",
        "seal_credentials",
        "restore_credentials",
        "wipe_credentials",
    )

    def __init__(self, api, open_channel: Callable[[str], object],
                 untrusted_now: Callable[[], int]) -> None:
        self._api = api
        self._open_channel = open_channel
        self._untrusted_now = untrusted_now

    # ------------------------------------------------------- provisioning

    def begin_provisioning(self, vm_nonce: bytes) -> bytes:
        """Generate the in-enclave delivery key; returns its public half."""
        delivery_key = generate_keypair(self._api.rng)
        self._api.memory.write("delivery_key", delivery_key)
        self._api.memory.write("vm_nonce", vm_nonce)
        return delivery_key.public.to_bytes()

    def get_binding_report(self, qe_target: TargetInfo) -> bytes:
        """A report binding the delivery key to this enclave's identity."""
        if not self._api.memory.contains("delivery_key"):
            raise ProvisioningError("begin_provisioning was not called")
        delivery_key: EcPrivateKey = self._api.memory.read("delivery_key")
        vm_nonce: bytes = self._api.memory.read("vm_nonce")
        report = self._api.create_report(
            qe_target,
            binding_hash(delivery_key.public.to_bytes(), vm_nonce),
        )
        return report.to_bytes()

    def complete_provisioning(self, message_bytes: bytes) -> str:
        """Decrypt and install the credential bundle (step 5)."""
        if not self._api.memory.contains("delivery_key"):
            raise ProvisioningError("no provisioning in progress")
        delivery_key: EcPrivateKey = self._api.memory.read("delivery_key")
        message = ProvisioningMessage.from_bytes(message_bytes)
        bundle = decrypt_bundle(
            delivery_key.scalar, delivery_key.public.to_bytes(), message
        )
        self._install_bundle(bundle)
        # One-shot delivery key: forward secrecy for later provisionings.
        self._api.memory.delete("delivery_key")
        self._api.memory.delete("vm_nonce")
        return bundle.leaf_certificate().subject.common_name

    # ------------------------------------------- CSR provisioning variant

    def generate_csr(self, subject_name: str, vm_nonce: bytes) -> bytes:
        """Generate the client key pair *inside* the enclave; return a CSR.

        The alternative provisioning path: the private key never exists
        anywhere but this enclave, not even transiently at the
        Verification Manager.  The key is bound to the attestation quote
        the same way the delivery key is (via ``get_binding_report`` over
        the CSR public key).
        """
        from repro.pki.csr import create_csr
        from repro.pki.name import DistinguishedName

        client_key = generate_keypair(self._api.rng)
        csr = create_csr(client_key, DistinguishedName(subject_name, "vnf"))
        self._api.memory.write("csr_key", client_key)
        # Reuse the delivery-key binding slot so get_binding_report covers
        # the CSR key: quote binds hash(public key, nonce).
        self._api.memory.write("delivery_key", client_key)
        self._api.memory.write("vm_nonce", vm_nonce)
        return csr.to_bytes()

    def install_certificate(self, certificate_bytes: bytes,
                            anchors: Tuple[bytes, ...],
                            controller_address: str) -> str:
        """Complete the CSR path: install the CA-signed certificate."""
        if not self._api.memory.contains("csr_key"):
            raise ProvisioningError("no CSR in progress")
        client_key: EcPrivateKey = self._api.memory.read("csr_key")
        certificate = Certificate.from_bytes(certificate_bytes)
        if certificate.public_key_bytes != client_key.public.to_bytes():
            raise ProvisioningError(
                "issued certificate does not match the in-enclave key"
            )
        bundle = CredentialBundle(
            private_key_bytes=client_key.to_bytes(),
            certificate_chain=(certificate_bytes,),
            controller_anchors=tuple(anchors),
            controller_address=controller_address,
        )
        self._install_bundle(bundle)
        for slot in ("csr_key", "delivery_key", "vm_nonce"):
            self._api.memory.delete(slot)
        return certificate.subject.common_name

    # --------------------------------------------- RA-TLS credential path

    def ratls_begin(self, qe_target: TargetInfo) -> bytes:
        """Generate the RA-TLS leaf key in-enclave; returns a report whose
        report-data commits to the key (Knauth et al.'s binding).

        No VM nonce: RA-TLS freshness comes from the TLS handshake's
        proof of key possession, not from a per-run challenge — that is
        what lets the IAS verdict for this quote be reused verbatim on
        every reconnect.
        """
        from repro.tls.ratls import ratls_report_data

        ratls_key = generate_keypair(self._api.rng)
        self._api.memory.write("ratls_key", ratls_key)
        return self._api.create_report(
            qe_target, ratls_report_data(ratls_key.public.to_bytes())
        ).to_bytes()

    def ratls_install(self, quote_bytes: bytes, subject_name: str,
                      san: Tuple[str, ...], anchors: Tuple[bytes, ...],
                      controller_address: str,
                      validity_seconds: int) -> str:
        """Assemble the quote-bearing self-signed certificate and install
        it as this enclave's controller credential."""
        from repro.tls.ratls import build_ratls_certificate, ratls_report_data

        if not self._api.memory.contains("ratls_key"):
            raise ProvisioningError("ratls_begin was not called")
        ratls_key: EcPrivateKey = self._api.memory.read("ratls_key")
        quote = Quote.from_bytes(quote_bytes)
        if quote.report_data != ratls_report_data(
                ratls_key.public.to_bytes()):
            raise ProvisioningError(
                "quote does not bind the in-enclave RA-TLS key"
            )
        certificate = build_ratls_certificate(
            ratls_key, subject_name, quote_bytes,
            now=self._untrusted_now(), validity_seconds=validity_seconds,
            san=tuple(san),
        )
        bundle = CredentialBundle(
            private_key_bytes=ratls_key.to_bytes(),
            certificate_chain=(certificate.to_bytes(),),
            controller_anchors=tuple(anchors),
            controller_address=controller_address,
        )
        self._install_bundle(bundle)
        self._api.memory.delete("ratls_key")
        return subject_name

    def _install_bundle(self, bundle: CredentialBundle) -> None:
        private_key = EcPrivateKey.from_bytes(bundle.private_key_bytes)
        chain = [Certificate.from_bytes(c) for c in bundle.certificate_chain]
        anchors = Truststore(
            [Certificate.from_bytes(c) for c in bundle.controller_anchors]
        )
        if chain and chain[0].public_key_bytes != private_key.public.to_bytes():
            raise ProvisioningError("bundle key does not match certificate")
        self._api.memory.write("bundle", bundle)
        self._api.memory.write("tls_client", TlsClient(TlsConfig(
            certificate_chain=chain,
            private_key=private_key,
            truststore=anchors,
            rng=self._api.rng,
            now=self._untrusted_now,
        )))
        self._api.memory.write("controller_address",
                               bundle.controller_address)

    # ------------------------------------------------------------ queries

    def has_credentials(self) -> bool:
        """True once a bundle is installed."""
        return self._api.memory.contains("bundle")

    def credential_subject(self) -> str:
        """The provisioned certificate's common name."""
        bundle: CredentialBundle = self._api.memory.read("bundle")
        return bundle.leaf_certificate().subject.common_name

    # ----------------------------------------------------- controller I/O

    def _ensure_connection(self):
        if self._api.memory.contains("conn"):
            conn = self._api.memory.read("conn")
            if not conn.closed and not conn.eof:
                return conn
        if not self._api.memory.contains("bundle"):
            raise ProvisioningError("enclave holds no credentials")
        address = self._api.memory.read("controller_address")
        channel = self._api.ocall(self._open_channel, address)
        client: TlsClient = self._api.memory.read("tls_client")
        conn = client.connect(channel, server_name=address)
        self._api.memory.write("conn", conn)
        self._api.memory.write("parser", HttpParser(is_server_side=False))
        return conn

    def request(self, method: str, path: str,
                body: bytes = b"") -> Tuple[int, bytes]:
        """One HTTPS exchange with the controller, fully inside the enclave."""
        conn = self._ensure_connection()
        parser: HttpParser = self._api.memory.read("parser")
        conn.send(HttpRequest(method, path, body=body).encode())
        responses = parser.feed(conn.recv_available())
        if not responses:
            raise SdnError("controller returned no response")
        response = responses[0]
        return response.status, response.body

    def disconnect(self) -> None:
        """Close the controller session (session keys are wiped with it)."""
        if self._api.memory.contains("conn"):
            self._api.memory.read("conn").close()
            self._api.memory.delete("conn")
            self._api.memory.delete("parser")

    # -------------------------------------------------------- persistence

    def seal_credentials(self) -> bytes:
        """Seal the bundle for storage across enclave restarts (E8)."""
        bundle: CredentialBundle = self._api.memory.read("bundle")
        return self._api.seal(bundle.to_bytes()).to_bytes()

    def restore_credentials(self, blob_bytes: bytes) -> str:
        """Unseal and reinstall a previously sealed bundle."""
        plaintext = self._api.unseal(SealedBlob.from_bytes(blob_bytes))
        bundle = CredentialBundle.from_bytes(plaintext)
        self._install_bundle(bundle)
        return bundle.leaf_certificate().subject.common_name

    def wipe_credentials(self) -> None:
        """Destroy installed credentials (revocation hygiene)."""
        self.disconnect()
        for key in ("bundle", "tls_client", "controller_address"):
            self._api.memory.delete(key)


def credential_enclave_image(network, source_host: str) -> EnclaveImage:
    """Build the image with OCALL hooks bound to one host's network stack."""

    def open_channel(address_text: str):
        return network.connect(source_host, Address.parse(address_text))

    def factory(api):
        return CredentialEnclaveBehavior(api, open_channel,
                                         network.clock.now_seconds)

    base = EnclaveImage.from_behavior_class(
        CredentialEnclaveBehavior, "vnf-credential-enclave"
    )
    return EnclaveImage(name=base.name, version=base.version,
                        code=base.code, behavior_factory=factory)


def reference_measurement() -> bytes:
    """The MRENCLAVE a verifier should expect for this enclave."""
    from repro.sgx.measurement import measure_image

    base = EnclaveImage.from_behavior_class(
        CredentialEnclaveBehavior, "vnf-credential-enclave"
    )
    return measure_image(base.code)


class CredentialEnclave:
    """Host-side handle for one VNF's credential enclave."""

    def __init__(self, host, vendor_key: EcPrivateKey, network,
                 vnf_name: str, isv_svn: int = 1,
                 image: Optional[EnclaveImage] = None) -> None:
        self.host = host
        self.vnf_name = vnf_name
        image = image or credential_enclave_image(network, host.name)
        sigstruct = sign_image(vendor_key, image.code,
                               vendor="RISE-credentials",
                               isv_prod_id=200, isv_svn=isv_svn)
        self.enclave: Enclave = host.platform.create_enclave(
            image, sigstruct, label=f"{host.name}/tee-{vnf_name}"
        )

    # -------------------------------------------------------- provisioning

    def begin_provisioning(self, vm_nonce: bytes) -> bytes:
        """Start provisioning; returns the in-enclave delivery public key."""
        return self.enclave.ecall("begin_provisioning", vm_nonce)

    def quote_binding(self, basename: bytes) -> Quote:
        """Quote the delivery-key binding (steps 3-4's evidence)."""
        qe = self.host.platform.quoting_enclave
        report_bytes = self.enclave.ecall("get_binding_report",
                                          qe.target_info())
        return qe.generate(Report.from_bytes(report_bytes), basename)

    def complete_provisioning(self, message: ProvisioningMessage) -> str:
        """Deliver the encrypted bundle into the enclave."""
        return self.enclave.ecall("complete_provisioning", message.to_bytes())

    def generate_csr(self, subject_name: str, vm_nonce: bytes) -> bytes:
        """CSR variant: in-enclave key generation; returns the CSR bytes."""
        return self.enclave.ecall("generate_csr", subject_name, vm_nonce)

    def install_certificate(self, certificate_bytes: bytes,
                            anchors, controller_address: str) -> str:
        """CSR variant: install the CA-signed certificate."""
        return self.enclave.ecall("install_certificate", certificate_bytes,
                                  tuple(anchors), controller_address)

    # --------------------------------------------------------------- RA-TLS

    def ratls_begin(self, basename: bytes) -> Quote:
        """Start the RA-TLS path: returns the quote binding the in-enclave
        leaf key (report-data = hash of its public key)."""
        qe = self.host.platform.quoting_enclave
        report_bytes = self.enclave.ecall("ratls_begin", qe.target_info())
        return qe.generate(Report.from_bytes(report_bytes), basename)

    def ratls_install(self, quote: Quote, anchors, controller_address: str,
                      validity_seconds: int) -> str:
        """Finish the RA-TLS path: the enclave self-signs its quote-bearing
        certificate and installs it as the controller credential."""
        return self.enclave.ecall(
            "ratls_install", quote.to_bytes(), self.vnf_name,
            (self.host.name,), tuple(anchors), controller_address,
            validity_seconds,
        )

    # ------------------------------------------------------------ REST API

    @property
    def client(self) -> "EnclaveBackedClient":
        """A controller client whose TLS runs inside this enclave."""
        return EnclaveBackedClient(self)

    def has_credentials(self) -> bool:
        """True once provisioned."""
        return self.enclave.ecall("has_credentials")

    def seal_credentials(self) -> bytes:
        """Sealed bundle for offline storage."""
        return self.enclave.ecall("seal_credentials")

    def restore_credentials(self, blob_bytes: bytes) -> str:
        """Reinstall sealed credentials after a restart."""
        return self.enclave.ecall("restore_credentials", blob_bytes)

    def wipe(self) -> None:
        """Drop credentials and close sessions."""
        self.enclave.ecall("wipe_credentials")


class EnclaveBackedClient(ControllerOps):
    """Same operations as :class:`repro.sdn.vnf.VnfRestClient`, but every
    byte of TLS state stays inside the credential enclave."""

    def __init__(self, credential_enclave: CredentialEnclave) -> None:
        self._enclave = credential_enclave.enclave

    def request_json(self, method: str, path: str,
                     payload: Optional[dict] = None) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        status, response_body = self._enclave.ecall("request", method, path,
                                                    body)
        if status != 200:
            raise SdnError(
                f"{method} {path} -> {status}: "
                f"{response_body.decode(errors='replace')}"
            )
        return json.loads(response_body.decode("utf-8"))

    def close(self) -> None:
        """Close the in-enclave controller session."""
        self._enclave.ecall("disconnect")
