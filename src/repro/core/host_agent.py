"""The host agent: the container host's endpoint for Verification Manager
requests.

Transport is a framed request/response protocol on the simulated network.
The channel itself is *untrusted by design*: every security-relevant
payload that crosses it is self-protecting — quotes are EPID-signed and
nonce-bound, provisioning bundles are encrypted to attested in-enclave
keys.  (The paper's prototype additionally wraps this link in mbedTLS-SGX;
the trust analysis is identical because the secure channel's endpoints are
themselves established via attestation.)
"""

from __future__ import annotations

import contextlib
from typing import Dict

from repro.analysis.sanitizer import make_rlock
from repro.core.attestation_enclave import AttestationEnclave, QuotedEvidence
from repro.core.credential_enclave import CredentialEnclave
from repro.core.provisioning import ProvisioningMessage
from repro.errors import NetError, VnfSgxError
from repro.net.address import Address
from repro.net.framing import send_frame, try_recv_frame
from repro.net.retry import RetryingMixin
from repro.net.simnet import Network
from repro.pki import der

AGENT_PORT = 7000


class HostAgent:
    """Serves attestation/provisioning operations for one container host."""

    def __init__(self, host, attestation_enclave: AttestationEnclave,
                 network: Network, port: int = AGENT_PORT) -> None:
        self.host = host
        self.address = Address(host.name, port)
        self._attestation = attestation_enclave
        self._credential_enclaves: Dict[str, CredentialEnclave] = {}
        network.listen(self.address, self._accept)

    def register_vnf(self, credential_enclave: CredentialEnclave) -> None:
        """Expose a VNF's credential enclave to the Verification Manager."""
        self._credential_enclaves[credential_enclave.vnf_name] = (
            credential_enclave
        )

    def credential_enclave(self, vnf_name: str) -> CredentialEnclave:
        """Look up a registered enclave."""
        try:
            return self._credential_enclaves[vnf_name]
        except KeyError as exc:
            raise VnfSgxError(
                f"host {self.host.name} has no VNF enclave {vnf_name!r}"
            ) from exc

    # ------------------------------------------------------------ transport

    def _accept(self, channel) -> None:
        def on_data(ch) -> None:
            while True:
                frame = try_recv_frame(ch)
                if frame is None:
                    return
                send_frame(ch, self._handle(frame))

        channel.on_receive(on_data)

    def _handle(self, frame: bytes) -> bytes:
        try:
            request = der.decode(frame)
            op = request[0]
            if op == "attest_host":
                _, nonce, basename = request
                evidence = self._attestation.collect_quoted_evidence(
                    nonce, basename
                )
                return der.encode(["ok", evidence.to_bytes()])
            if op == "begin_provisioning":
                _, vnf_name, vm_nonce = request
                enclave = self.credential_enclave(vnf_name)
                return der.encode(["ok", enclave.begin_provisioning(vm_nonce)])
            if op == "quote_vnf":
                _, vnf_name, basename = request
                enclave = self.credential_enclave(vnf_name)
                return der.encode(
                    ["ok", enclave.quote_binding(basename).to_bytes()]
                )
            if op == "complete_provisioning":
                _, vnf_name, message_bytes = request
                enclave = self.credential_enclave(vnf_name)
                subject = enclave.complete_provisioning(
                    ProvisioningMessage.from_bytes(message_bytes)
                )
                return der.encode(["ok", subject])
            if op == "generate_csr":
                _, vnf_name, subject_name, vm_nonce = request
                enclave = self.credential_enclave(vnf_name)
                return der.encode(
                    ["ok", enclave.generate_csr(subject_name, vm_nonce)]
                )
            if op == "install_certificate":
                _, vnf_name, certificate_bytes, anchors, address = request
                enclave = self.credential_enclave(vnf_name)
                subject = enclave.install_certificate(
                    certificate_bytes, tuple(anchors), address
                )
                return der.encode(["ok", subject])
            return der.encode(["error", f"unknown operation {op!r}"])
        except Exception as exc:  # noqa: BLE001 — agent must stay up
            return der.encode(["error", f"{type(exc).__name__}: {exc}"])


class HostAgentClient(RetryingMixin):
    """The Verification Manager's stub for one host agent.

    The stub keeps one persistent framed channel; a configured
    :class:`~repro.net.retry.RetryPolicy` makes every call resilient to
    transient transport faults (refused connects, mid-stream drops):
    each re-attempt re-establishes the channel and re-sends the request.
    Application-level agent errors (``VnfSgxError``) are never retried.

    Thread-safe: the persistent channel is a lockstep request/response
    rail, so concurrent fleet workers sharing one stub serialize *whole*
    exchanges under an internal lock — exactly the sharing rule
    :mod:`repro.net.channel` documents (see ``docs/CONCURRENCY.md``).
    """

    def __init__(self, network: Network, address: Address,
                 source_host: str = "verification-manager") -> None:
        self._network = network
        self._address = address
        self._source_host = source_host
        self._channel = None
        self._exchange_lock = make_rlock("agent")

    @property
    def address(self) -> Address:
        """The agent endpoint this stub talks to."""
        return self._address

    def _ensure_channel(self):
        stale = (self._channel is None or self._channel.closed
                 or self._channel.eof)
        if stale:
            self._channel = self._network.connect(self._source_host,
                                                  self._address)
        return self._channel

    def _reset_channel(self) -> None:
        if self._channel is not None and not self._channel.closed:
            # close must never mask the error being recovered from
            with contextlib.suppress(NetError):
                self._channel.close()
        self._channel = None

    def _exchange(self, payload: bytes) -> bytes:
        from repro.net.framing import recv_frame

        with self._exchange_lock:
            channel = self._ensure_channel()
            try:
                send_frame(channel, payload)
                return recv_frame(channel)
            except NetError:
                # The channel is suspect (dropped mid-stream, half-closed,
                # out of lockstep): drop it so a retry starts clean.
                self._reset_channel()
                raise

    def _call(self, request: list):
        payload = der.encode(request)
        response = der.decode(self._retrying(
            lambda: self._exchange(payload),
            operation="host-agent", clock=self._network.clock,
        ))
        if response[0] != "ok":
            raise VnfSgxError(f"host agent error: {response[1]}")
        return response[1]

    def attest_host(self, nonce: bytes, basename: bytes) -> QuotedEvidence:
        """Step 1: request quoted host evidence."""
        return QuotedEvidence.from_bytes(
            self._call(["attest_host", nonce, basename])
        )

    def begin_provisioning(self, vnf_name: str, vm_nonce: bytes) -> bytes:
        """Ask a VNF enclave for its delivery public key."""
        return self._call(["begin_provisioning", vnf_name, vm_nonce])

    def quote_vnf(self, vnf_name: str, basename: bytes) -> bytes:
        """Step 3: request the VNF enclave's binding quote (serialized)."""
        return self._call(["quote_vnf", vnf_name, basename])

    def complete_provisioning(self, vnf_name: str,
                              message_bytes: bytes) -> str:
        """Step 5: deliver the encrypted credential bundle."""
        return self._call(["complete_provisioning", vnf_name, message_bytes])

    def generate_csr(self, vnf_name: str, subject_name: str,
                     vm_nonce: bytes) -> bytes:
        """CSR variant: ask the enclave for an in-enclave-keyed CSR."""
        return self._call(["generate_csr", vnf_name, subject_name, vm_nonce])

    def install_certificate(self, vnf_name: str, certificate_bytes: bytes,
                            anchors, address: str) -> str:
        """CSR variant: deliver the signed certificate."""
        return self._call(["install_certificate", vnf_name,
                           certificate_bytes, list(anchors), address])
