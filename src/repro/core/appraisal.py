"""IML appraisal: deciding whether a container host is trustworthy.

"The Verification Manager appraises the trustworthiness of the container
host based on the obtained quote.  The protocol continues only if the host
is considered trustworthy following the appraisal" (paper, section 2).

Appraisal checks, in order:

1. structural sanity (boot aggregate first);
2. internal consistency — the entry list reproduces its claimed aggregate;
3. every measured file matches an expected ("golden") value;
4. in the TPM-rooted configuration (paper §4), the quoted hardware PCR
   matches the aggregate recomputed from the shipped list, with the TPM
   quote verified against the platform's certified AIK and bound to the
   verifier's nonce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.crypto.keys import EcPublicKey
from repro.crypto.sha256 import sha256
from repro.errors import AppraisalFailed
from repro.ima.iml import BOOT_AGGREGATE_PATH, ImaEntry, MeasurementList
from repro.tpm.quote import TpmQuote

IMA_PCR_INDEX = 10


class ExpectedValues:
    """The golden-value database: path -> allowed content hashes."""

    def __init__(self) -> None:
        self._allowed: Dict[str, Set[bytes]] = {}
        self._prefix_allow_unknown: List[str] = []

    def allow(self, path: str, file_hash: bytes) -> None:
        """Whitelist a hash for ``path``."""
        self._allowed.setdefault(path, set()).add(file_hash)

    def allow_content(self, path: str, content: bytes) -> None:
        """Whitelist ``path`` with the hash of ``content``."""
        self.allow(path, sha256(content))

    def allow_image(self, root_prefix: str, image) -> None:
        """Whitelist every file a container image materializes under
        ``root_prefix`` (e.g. ``/var/lib/containers/ctr-0001``)."""
        for rel_path, content in image.flatten().items():
            self.allow_content(root_prefix + rel_path, content)

    def allow_unknown_under(self, prefix: str) -> None:
        """Tolerate unlisted paths under ``prefix`` (e.g. mutable state
        the policy measures but the operator does not pin)."""
        self._prefix_allow_unknown.append(prefix)

    def check(self, entry: ImaEntry) -> Optional[str]:
        """Return a failure description for ``entry``, or ``None`` if ok."""
        allowed = self._allowed.get(entry.path)
        if allowed is None:
            if any(entry.path.startswith(p)
                   for p in self._prefix_allow_unknown):
                return None
            return f"unexpected measured path {entry.path}"
        if entry.file_hash not in allowed:
            return (
                f"hash mismatch for {entry.path}: "
                f"{entry.file_hash.hex()[:16]}... not in golden set"
            )
        return None

    def __len__(self) -> int:
        return len(self._allowed)


@dataclass
class AppraisalResult:
    """The appraisal verdict plus every individual failure found."""

    trustworthy: bool
    failures: List[str] = field(default_factory=list)
    entries_checked: int = 0
    tpm_verified: bool = False

    def raise_if_failed(self, subject: str = "host") -> None:
        """Raise :class:`AppraisalFailed` carrying the failure list."""
        if not self.trustworthy:
            raise AppraisalFailed(
                f"{subject} failed appraisal: " + "; ".join(self.failures)
            )


class AppraisalEngine:
    """Appraises shipped measurement lists against expected values."""

    def __init__(self, expected: ExpectedValues,
                 require_tpm: bool = False) -> None:
        self.expected = expected
        self.require_tpm = require_tpm

    def appraise(self, iml_bytes: bytes,
                 claimed_aggregate: bytes,
                 tpm_quote_bytes: bytes = b"",
                 aik_public: Optional[EcPublicKey] = None,
                 nonce: bytes = b"") -> AppraisalResult:
        """Appraise a serialized IML.

        Args:
            iml_bytes: the serialized measurement list from the quote.
            claimed_aggregate: the aggregate the host claims (bound inside
                the SGX quote's report data by the attestation enclave).
            tpm_quote_bytes: optional serialized TPM quote over PCR 10.
            aik_public: the platform's certified AIK (required with TPM).
            nonce: the freshness challenge the TPM quote must embed.
        """
        result = AppraisalResult(trustworthy=True)
        iml = MeasurementList.from_bytes(iml_bytes)
        entries = iml.entries
        result.entries_checked = len(entries)

        if not entries or entries[0].path != BOOT_AGGREGATE_PATH:
            result.failures.append("IML does not start with boot_aggregate")

        recomputed = MeasurementList.compute_aggregate(entries)
        if recomputed != claimed_aggregate:
            result.failures.append(
                "IML is internally inconsistent: recomputed aggregate "
                "does not match the claimed aggregate"
            )

        from repro.ima.iml import VIOLATION_HASH

        for entry in entries:
            if entry.path == BOOT_AGGREGATE_PATH:
                continue
            if entry.file_hash == VIOLATION_HASH:
                result.failures.append(
                    f"measurement violation for {entry.path}: the file "
                    "changed while being measured (ToMToU)"
                )
                continue
            failure = self.expected.check(entry)
            if failure is not None:
                result.failures.append(failure)

        if self.require_tpm or tpm_quote_bytes:
            tpm_failures = self._check_tpm(
                tpm_quote_bytes, aik_public, recomputed, nonce
            )
            result.failures.extend(tpm_failures)
            result.tpm_verified = not tpm_failures and bool(tpm_quote_bytes)

        result.trustworthy = not result.failures
        return result

    def _check_tpm(self, tpm_quote_bytes: bytes,
                   aik_public: Optional[EcPublicKey],
                   recomputed_aggregate: bytes,
                   nonce: bytes) -> List[str]:
        if not tpm_quote_bytes:
            return ["TPM quote required by policy but not supplied"]
        if aik_public is None:
            return ["no certified AIK available for this platform"]
        try:
            quote = TpmQuote.from_bytes(tpm_quote_bytes)
            quote.verify(aik_public)
        except Exception as exc:  # noqa: BLE001 — any failure means distrust
            return [f"TPM quote invalid: {exc}"]
        if nonce and quote.nonce != nonce:
            return ["TPM quote nonce mismatch (replay?)"]
        try:
            hardware_pcr = quote.value_of(IMA_PCR_INDEX)
        except Exception as exc:  # noqa: BLE001
            return [f"TPM quote lacks PCR {IMA_PCR_INDEX}: {exc}"]
        if hardware_pcr != recomputed_aggregate:
            return [
                "hardware PCR-10 does not match the shipped IML: the "
                "measurement log was rewritten after the fact"
            ]
        return []
