"""Fleet-scale concurrent enrollment: a worker-pool scheduler.

The paper enrolls two VNFs; an operator enrolls hundreds.  Driving
:class:`~repro.core.enrollment.EnrollmentSession` serially repeats two
expensive steps once *per VNF* that a fleet only needs once *per run*:

- **host attestation** — every serial enrollment re-attests the VNF's
  container host (fresh nonce, fresh quote, full IAS round trip, full
  IML appraisal).  The fleet scheduler attests each distinct host
  exactly once (*single-flight*: the first worker that needs a host
  attests it while holding that host's lock; everyone else waits and
  reuses the verdict);
- **the IAS connection** — :class:`~repro.ias.api.IasClient` dials and
  TLS-handshakes per verification.  :class:`PooledIasClient` keeps one
  persistent connection and pipelines report requests over it,
  serializing whole exchanges under a lock as
  :mod:`repro.net.channel`'s sharing rule requires.

Determinism: pooled and serial runs must issue **byte-identical
credentials** (experiment E12 asserts this).  Three mechanisms make the
result independent of worker interleaving:

1. certificate serials are *reserved in submission order* via
   :meth:`~repro.pki.ca.CertificateAuthority.reserve_serial` before any
   worker starts;
2. each VNF's key material comes from a dedicated per-VNF DRBG
   (:meth:`~repro.core.verification_manager.VerificationManager.
   _credential_rng`), so key bits never depend on how other
   enrollments interleaved draws on the shared RNG;
3. ECDSA signatures are RFC 6979 deterministic.

Partial-failure semantics mirror
:meth:`~repro.core.workflow.Deployment.run_workflow`: one failed VNF is
recorded in the report and the fleet run continues.  Locking rules for
everything the workers share are catalogued in ``docs/CONCURRENCY.md``.
"""

from __future__ import annotations

import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.sanitizer import make_lock, make_rlock
from repro.core.enrollment import (
    STATE_FAILED,
    STATE_HOST_ATTESTED,
    EnrollmentSession,
    StepTiming,
)
from repro.core.kernels import KernelPool
from repro.errors import ChannelClosed, NetError, ReproError, VnfSgxError
from repro.ias.api import IasClient
from repro.net.retry import RetryPolicy

HOST_ATTESTATION_STEP = "host-attestation (steps 1-2)"


class _IasBatch:
    """One in-flight coalescing window of report requests.

    The first thread to submit becomes the *leader*: it waits out the
    window (or until the batch fills), performs one batched exchange,
    and publishes the results; *followers* park on ``done`` and read
    their slot.  All mutation of ``items`` happens under the client's
    ``_batch_lock``; ``results``/``error`` are written by the leader
    before ``done`` is set and only read after it.
    """

    __slots__ = ("items", "sealed", "full", "done", "results", "error")

    def __init__(self) -> None:
        self.items: List = []  # (quote_bytes, nonce), submission order
        self.sealed = False    # leader took ownership; no more joiners
        self.full = threading.Event()
        self.done = threading.Event()
        self.results = None
        self.error: Optional[BaseException] = None


class PooledIasClient(IasClient):
    """An :class:`IasClient` that keeps one persistent connection.

    The base client dials IAS and runs a full TLS handshake for every
    quote; a fleet of N VNFs on H hosts performs N + H verifications, so
    the handshake tax dominates.  This subclass opens the connection
    once, pipelines report requests over it (the IAS server's parser
    loop already answers back-to-back requests on one connection), and
    transparently reconnects when the transport faults mid-exchange so
    the retry layer sees exactly the usual transient errors.

    Thread-safe: the pooled connection is a lockstep request/response
    rail, so whole exchanges serialize under ``_pool_lock`` — the
    sharing rule from :mod:`repro.net.channel`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pooled_conn = None
        self._pool_lock = make_rlock("ias_pool")
        #: Exchanges served over a reused connection (telemetry for E12).
        self.reused_exchanges = 0
        #: Connections (re-)established, including the first.
        self.connects = 0
        # Time-window batcher (off by default; enable_batching() arms it).
        self._batch_lock = make_lock("ias_batch")
        self._batch: Optional[_IasBatch] = None
        self._batch_window = 0.0
        self._batch_max = 1
        #: Report requests that travelled inside a coalesced batch.
        self.batched_exchanges = 0

    # --------------------------------------------------------- batching

    def enable_batching(self, window_seconds: float = 0.002,
                        max_batch: int = 16) -> None:
        """Coalesce concurrent :meth:`verify_quote` calls into one
        batched IAS round trip (``POST /attestation/v4/reports``).

        The first caller in a window leads: it waits up to
        ``window_seconds`` (wall clock — the window exists to overlap
        *real* thread scheduling, so the virtual clock is the wrong
        ruler) for up to ``max_batch - 1`` followers, then performs one
        exchange for everyone.  A lone caller just pays the window.
        """
        if window_seconds <= 0 or max_batch < 2:
            raise VnfSgxError("batching needs a positive window and "
                              "a batch size of at least 2")
        with self._batch_lock:
            self._batch_window = window_seconds
            self._batch_max = max_batch

    def disable_batching(self) -> None:
        """Back to one request per verification (idempotent)."""
        with self._batch_lock:
            self._batch_window = 0.0
            self._batch_max = 1
            self._batch = None

    def verify_quote(self, quote_bytes, nonce=""):
        if self._batch_window <= 0:
            return super().verify_quote(quote_bytes, nonce)
        with self._batch_lock:
            batch = self._batch
            leader = (batch is None or batch.sealed
                      or len(batch.items) >= self._batch_max)
            if leader:
                batch = _IasBatch()
                self._batch = batch
            index = len(batch.items)
            batch.items.append((quote_bytes, nonce))
            if len(batch.items) >= self._batch_max:
                batch.full.set()
            window = self._batch_window
        if not leader:
            batch.done.wait()
            if batch.error is not None:
                raise batch.error
            return batch.results[index]
        batch.full.wait(window)
        with self._batch_lock:
            batch.sealed = True
            if self._batch is batch:
                self._batch = None
        try:
            batch.results = self._retrying(
                lambda: self._verify_batch_once(batch.items),
                operation="ias-verify", clock=self._network.clock,
            )
        except Exception as exc:
            batch.error = exc
            raise
        finally:
            batch.done.set()
        if len(batch.items) > 1:
            with self._batch_lock:
                self.batched_exchanges += len(batch.items)
        return batch.results[index]

    # ----------------------------------------------- pooled connection

    def _pooled_exchange(self, exchange):
        """Run ``exchange(conn)`` on the pooled connection.

        On a transport fault over a *reused* connection, the connection
        may simply have gone stale since the last exchange — retry once
        on a fresh handshake within this same attempt, so the error
        that ultimately reaches the retry layer (and, once the retry
        deadline is exhausted, the caller) is the underlying
        :class:`~repro.errors.IasError`, not the stale transport's
        ``ChannelClosed``.  A fault on a *fresh* connection is genuine
        and propagates for the retry layer's backoff.
        """
        with self._pool_lock:
            reused = self._pooled_conn is not None
            if reused:
                self.reused_exchanges += 1
            else:
                self._pooled_conn = self._open_connection()
                self.connects += 1
            try:
                return exchange(self._pooled_conn)
            except (NetError, ChannelClosed):
                self.close()
                if not reused:
                    raise
                self._pooled_conn = self._open_connection()
                self.connects += 1
                try:
                    return exchange(self._pooled_conn)
                except (NetError, ChannelClosed):
                    self.close()
                    raise

    def _verify_once(self, quote_bytes, nonce):
        return self._pooled_exchange(
            lambda conn: self._exchange_on(conn, quote_bytes, nonce)
        )

    def _verify_batch_once(self, items):
        return self._pooled_exchange(
            lambda conn: self._exchange_batch_on(conn, items)
        )

    def close(self) -> None:
        """Tear down the pooled connection (idempotent)."""
        with self._pool_lock:
            conn = self._pooled_conn
            self._pooled_conn = None
            if conn is not None:
                # Best-effort: a dropped channel cannot block teardown.
                with contextlib.suppress(NetError, ChannelClosed):
                    conn.close()


@dataclass
class FleetResult:
    """Outcome of one VNF's enrollment within a fleet run."""

    vnf_name: str
    host_name: str
    state: str
    certificate_serial: Optional[int] = None
    timings: List[StepTiming] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        """Did this VNF reach the enrolled state?"""
        return self.error is None


@dataclass
class FleetReport:
    """What a fleet run measured — the pooled analogue of
    :class:`~repro.core.workflow.WorkflowTrace`.

    Attributes:
        results: per-VNF outcome, in submission order.
        host_attestations: one timing per distinct host (single-flight:
            the fleet attests each host once, unlike the serial loop).
        workers: pool width the run used.
        simulated_seconds / wall_seconds / clock_charges: totals.
    """

    results: Dict[str, FleetResult] = field(default_factory=dict)
    host_attestations: Dict[str, StepTiming] = field(default_factory=dict)
    workers: int = 1
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    clock_charges: Dict[str, float] = field(default_factory=dict)
    ias_connects: int = 0
    ias_reused_exchanges: int = 0
    #: Process-pool axis (0 = everything ran in-process on the GIL).
    processes: int = 0
    kernel_dispatches: int = 0
    kernel_inline_calls: int = 0
    ias_batched_exchanges: int = 0

    @property
    def per_vnf(self) -> Dict[str, List[StepTiming]]:
        """Per-step timings of every successfully enrolled VNF
        (``WorkflowTrace.per_vnf`` semantics)."""
        return {name: list(result.timings)
                for name, result in self.results.items()
                if result.succeeded}

    @property
    def failed(self) -> Dict[str, str]:
        """VNF name -> ``"ExceptionType: message"`` for every failure
        (``WorkflowTrace.failed`` semantics)."""
        return {name: result.error
                for name, result in self.results.items()
                if result.error is not None}

    @property
    def fully_succeeded(self) -> bool:
        """True when every submitted VNF enrolled."""
        return all(result.succeeded for result in self.results.values())

    def step_totals(self) -> Dict[str, float]:
        """Simulated seconds per step, summed over VNFs and hosts."""
        totals: Dict[str, float] = {}
        for timing in self.host_attestations.values():
            totals[timing.step] = (
                totals.get(timing.step, 0.0) + timing.simulated_seconds
            )
        for result in self.results.values():
            for timing in result.timings:
                totals[timing.step] = (
                    totals.get(timing.step, 0.0) + timing.simulated_seconds
                )
        return totals


class FleetScheduler:
    """Drives N enrollment sessions across a bounded worker pool.

    Args:
        deployment: a wired :class:`~repro.core.workflow.Deployment`.
        workers: pool width (bounded concurrency; 1 degenerates to a
            serial loop over the same code path).
        retry_policy: per-VNF step retry/deadline budget; defaults to
            the deployment's configured policy.
        pooled_ias: reuse one persistent IAS connection for the whole
            run (the E12 speedup lever); disable to keep the
            connection-per-verification behaviour.
        processes: kernel-pool width for the CPU-bound work (quote
            verification, certificate signing) — the E12 *multi-core*
            lever.  0 (default) keeps everything in-process; N > 0
            dispatches to N worker processes via
            :class:`~repro.core.kernels.KernelPool` and arms the pooled
            client's IAS request batcher so concurrent enrollments
            coalesce into one round trip.
        ias_batch_window: coalescing window (wall seconds) for the
            batcher; only used when ``processes > 0`` with a pooled
            client.
    """

    def __init__(self, deployment, workers: int = 4,
                 retry_policy: Optional[RetryPolicy] = None,
                 pooled_ias: bool = True, processes: int = 0,
                 ias_batch_window: float = 0.002) -> None:
        if workers < 1:
            raise VnfSgxError("fleet needs at least one worker")
        if processes < 0:
            raise VnfSgxError("fleet process count cannot be negative")
        self.deployment = deployment
        self.workers = workers
        self.retry_policy = (retry_policy if retry_policy is not None
                             else deployment.retry_policy)
        self.pooled_ias = pooled_ias
        self.processes = int(processes)
        self.ias_batch_window = ias_batch_window
        self._host_locks: Dict[str, threading.Lock] = {}
        self._host_errors: Dict[str, Optional[str]] = {}
        self._keystore_lock = make_lock("keystore")

    # ------------------------------------------------------------ internals

    def _pooled_client(self) -> PooledIasClient:
        from repro.core.workflow import IAS_ADDRESS

        dep = self.deployment
        client = PooledIasClient(
            dep.network, IAS_ADDRESS, dep.ias_http.ias_truststore,
            dep.ias.report_signing_public_key, rng=dep.rng,
        )
        client.configure_retries(self.retry_policy, rng=dep._retry_rng)
        if dep.telemetry is not None:
            client.instrument(dep.telemetry)
        return client

    def _ensure_host_attested(self, host_name: str) -> StepTiming:
        """Single-flight host attestation.

        The first worker that needs ``host_name`` attests it under the
        host's lock; later workers (and later VNFs on the same host)
        block on the lock, then reuse the verdict.  A host that *failed*
        attestation fails every VNF scheduled on it — the same outcome
        the serial loop reaches one enrollment at a time.
        """
        dep = self.deployment
        lock = self._host_locks[host_name]
        with lock:
            if host_name in self._host_errors:
                error = self._host_errors[host_name]
                if error is not None:
                    raise VnfSgxError(
                        f"host {host_name} failed fleet attestation: {error}"
                    )
                return self.deployment_report.host_attestations[host_name]
            sim_start = dep.clock.local_seconds()
            wall_start = time.perf_counter()
            try:
                result = dep.vm.attest_host(
                    dep.agent_clients[host_name], host_name
                )
                result.raise_if_failed(host_name)
            except ReproError as exc:
                self._host_errors[host_name] = (
                    f"{type(exc).__name__}: {exc}"
                )
                raise
            timing = StepTiming(
                step=HOST_ATTESTATION_STEP,
                simulated_seconds=dep.clock.local_seconds() - sim_start,
                wall_seconds=time.perf_counter() - wall_start,
            )
            self._host_errors[host_name] = None
            self.deployment_report.host_attestations[host_name] = timing
            return timing

    def _enroll_one(self, vnf_name: str, serial: int) -> FleetResult:
        dep = self.deployment
        host = dep.vnf_host[vnf_name]
        try:
            self._ensure_host_attested(host.name)
        except ReproError as exc:
            return FleetResult(
                vnf_name=vnf_name, host_name=host.name, state=STATE_FAILED,
                error=f"{type(exc).__name__}: {exc}",
            )
        session = EnrollmentSession(
            vm=dep.vm,
            agent=dep.agent_clients[host.name],
            host_name=host.name,
            vnf_name=vnf_name,
            controller_address=str(dep.controller_address()),
            # Per-thread elapsed time: each worker's step timings count
            # only the virtual-clock charges *it* performed, so pooled
            # timings stay comparable to serial ones.
            sim_now=dep.clock.local_seconds,
            telemetry=dep.telemetry,
            retry_policy=self.retry_policy,
            clock=dep.clock,
            retry_rng=dep._retry_rng,
            reserved_serial=serial,
        )
        # The host was attested fleet-wide (single-flight) above.
        session.state = STATE_HOST_ATTESTED
        try:
            session.provision()
            if dep.client_validation == "keystore":
                with self._keystore_lock:
                    dep.keystore.add_trusted(
                        vnf_name, dep.vm.issued_certificate(vnf_name)
                    )
            session.connect(dep.enclave_client(vnf_name))
        except ReproError as exc:
            return FleetResult(
                vnf_name=vnf_name, host_name=host.name, state=session.state,
                certificate_serial=session.certificate_serial,
                timings=list(session.timings),
                error=f"{type(exc).__name__}: {exc}",
            )
        return FleetResult(
            vnf_name=vnf_name, host_name=host.name, state=session.state,
            certificate_serial=session.certificate_serial,
            timings=list(session.timings),
        )

    # -------------------------------------------------------------- running

    def enroll(self, vnf_names: Optional[Sequence[str]] = None
               ) -> FleetReport:
        """Enroll ``vnf_names`` (default: every VNF) across the pool.

        Returns a :class:`FleetReport`; failures are recorded per VNF,
        never raised (partial-failure semantics).
        """
        dep = self.deployment
        names = list(vnf_names if vnf_names is not None else dep.vnf_names)
        unknown = [name for name in names if name not in dep.vnf_host]
        if unknown:
            raise VnfSgxError(f"unknown VNFs: {', '.join(unknown)}")
        if len(set(names)) != len(names):
            raise VnfSgxError("duplicate VNF names in fleet submission")

        report = FleetReport(workers=self.workers)
        self.deployment_report = report
        self._host_locks = {
            dep.vnf_host[name].name: make_lock("host") for name in names
        }
        self._host_errors = {}

        # Reserve serials in submission order *before* dispatch: the
        # certificate each VNF receives is then independent of worker
        # interleaving and identical to a serial loop's.
        serials = {name: dep.vm.ca.reserve_serial() for name in names}

        pooled = self._pooled_client() if self.pooled_ias else None
        previous_ias = (dep.vm.swap_ias_client(pooled)
                        if pooled is not None else None)
        # Multi-core axis: one kernel pool serves both CPU-bound paths
        # every _enroll_one worker hits — quote verification (IAS side)
        # and certificate signing (CA side).  Workers hold no locks;
        # order-sensitive state (serials, report ids) was fixed above.
        kernel_pool = None
        if self.processes > 0:
            kernel_pool = KernelPool(self.processes, label="fleet")
            dep.ias.attach_kernel_pool(kernel_pool)
            dep.vm.attach_kernel_pool(kernel_pool)
            if pooled is not None:
                pooled.enable_batching(window_seconds=self.ias_batch_window)
        report.processes = self.processes
        sim_start = dep.clock.now()
        wall_start = time.perf_counter()
        dep.clock.reset_charges()
        try:
            if not names:
                return report
            if self.workers == 1:
                outcomes = [self._enroll_one(name, serials[name])
                            for name in names]
            else:
                with ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="fleet") as pool:
                    outcomes = list(pool.map(
                        self._enroll_one, names,
                        [serials[name] for name in names],
                    ))
            for outcome in outcomes:
                report.results[outcome.vnf_name] = outcome
            return report
        finally:
            if kernel_pool is not None:
                dep.ias.attach_kernel_pool(None)
                dep.vm.attach_kernel_pool(None)
                report.kernel_dispatches = kernel_pool.dispatched
                report.kernel_inline_calls = kernel_pool.inline_calls
                kernel_pool.shutdown()
            if pooled is not None:
                dep.vm.swap_ias_client(previous_ias)
                report.ias_connects = pooled.connects
                report.ias_reused_exchanges = pooled.reused_exchanges
                report.ias_batched_exchanges = pooled.batched_exchanges
                pooled.close()
            report.simulated_seconds = dep.clock.now() - sim_start
            report.wall_seconds = time.perf_counter() - wall_start
            report.clock_charges = dep.clock.charges()
