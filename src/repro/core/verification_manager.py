"""The Verification Manager — the paper's central component.

"We introduce a Verification Manager module that has a central position in
our proposed architecture: it obtains integrity measurements of VNFs
through an attestation protocol and appraises the trustworthiness of the
platform.  Furthermore, it handles the communication with third-party
attestation services, generates the HMAC key and nonces, as well as the
certificates for the client authentication."  (paper, section 2.)

Responsibilities implemented here, keyed to Figure 1:

- step 1/2: remote attestation of container hosts, IAS verification,
  IML appraisal (optionally TPM-rooted);
- step 3/4: remote attestation of VNF credential enclaves;
- step 5: CA duties — key generation, certificate signing, encrypted
  provisioning into the attested enclave;
- revocation: CRLs for credentials, IAS revocation for platforms.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, Dict, List, Optional

from repro.analysis.sanitizer import make_rlock
from repro.core import events as ev
from repro.core.appraisal import AppraisalEngine, AppraisalResult, ExpectedValues
from repro.core.attestation_enclave import attestation_report_data
from repro.core.host_agent import HostAgentClient
from repro.core.policy import DeploymentPolicy
from repro.core.provisioning import (
    CredentialBundle,
    binding_hash,
    encrypt_bundle,
)
from repro.core.verification_cache import VerificationCache
from repro.crypto.keys import EcPublicKey, generate_keypair
from repro.crypto.rng import HmacDrbg, default_rng
from repro.errors import AttestationFailed, RevocationError, VnfSgxError
from repro.ias.api import IasClient
from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate, KEY_USAGE_CLIENT_AUTH
from repro.pki.crl import REASON_PLATFORM_UNTRUSTED, REASON_UNSPECIFIED
from repro.pki.name import DistinguishedName
from repro.pki.truststore import Truststore
from repro.sgx.quote import Quote


class HostTrustRecord:
    """What the VM remembers about an attested host."""

    def __init__(self, host_name: str, attested_at: float,
                 appraisal: AppraisalResult) -> None:
        self.host_name = host_name
        self.attested_at = attested_at
        self.appraisal = appraisal
        self.revoked = False

    @property
    def trusted(self) -> bool:
        """Current trust verdict."""
        return self.appraisal.trustworthy and not self.revoked


class VerificationManager:
    """The deployment's trust root."""

    #: Modelled verifier-side cost of appraising one IML entry (two hash
    #: applications plus a golden-value lookup).  Charged to the virtual
    #: clock so attestation latency scales with measurement-list size
    #: (experiment E2); tune per deployment hardware.
    APPRAISAL_SECONDS_PER_ENTRY = 5e-6

    def __init__(self, ias_client: IasClient, policy: DeploymentPolicy,
                 expected_values: ExpectedValues,
                 now: Callable[[], float] = lambda: 0.0,
                 rng: Optional[HmacDrbg] = None,
                 ca_name: str = "Verification-Manager-CA",
                 clock=None,
                 verification_cache: Optional[VerificationCache] = None
                 ) -> None:
        self._ias = ias_client
        self.policy = policy
        self.appraisal_engine = AppraisalEngine(
            expected_values, require_tpm=policy.require_tpm
        )
        self._now = now
        self._clock = clock
        self._rng = rng or default_rng()
        self.ca = CertificateAuthority(
            DistinguishedName(ca_name, "RISE"), now=int(now()), rng=self._rng
        )
        self.audit = ev.AuditLog(now=now)
        #: Memoised IAS verdicts for byte-identical evidence (retry storms
        #: re-submit the same quote+nonce).  Revocation paths flush it.
        self.verification_cache = (
            verification_cache if verification_cache is not None
            else VerificationCache(now=now)
        )
        self._telemetry = None  # set by instrument()
        #: Guards the trust-state maps below plus the revocation paths.
        #: Lock ordering: the VM lock may be taken *before* the CA lock
        #: and the cache locks, never after (``docs/CONCURRENCY.md``).
        self._lock = make_rlock("vm")
        #: Per-VNF credential key derivation.  Each VNF's key pair (and
        #: bundle-encryption randomness) comes from a dedicated DRBG
        #: seeded from one root draw, so the credentials a VNF receives
        #: do not depend on how many *other* enrollments interleaved
        #: their draws on the shared RNG — a serial loop and a worker
        #: pool produce byte-identical certificates.
        self._credential_root = self._rng.random_bytes(32)
        self._credential_rngs: Dict[str, HmacDrbg] = {}
        self._hosts: Dict[str, HostTrustRecord] = {}
        self._aiks: Dict[str, EcPublicKey] = {}
        self._issued: Dict[str, Certificate] = {}  # vnf name -> current cert
        self._vnf_host: Dict[str, str] = {}        # vnf name -> host name
        self._crl_subscribers: List[object] = []   # TlsConfigs to refresh
        self._ratls_verifiers: List[object] = []   # RatlsVerifier instances

    # ----------------------------------------------------------- telemetry

    def instrument(self, telemetry) -> None:
        """Attach a :class:`repro.obs.Telemetry`: attestation, IAS and
        provisioning paths gain histograms/spans, and every audit event is
        mirrored into ``vnf_sgx_audit_events_total{kind=...}``.

        Pass ``None`` to detach.  With no telemetry attached every hook
        reduces to one ``is None`` check — the disabled path costs nothing
        and charges nothing to the virtual clock either way.
        """
        self._telemetry = telemetry
        self.audit.observer = (
            telemetry.observe_audit if telemetry is not None else None
        )
        with self._lock:
            verifiers = list(self._ratls_verifiers)
        for verifier in verifiers:
            verifier.instrument(telemetry)

    def swap_ias_client(self, client: IasClient) -> IasClient:
        """Install a different IAS client; returns the previous one.

        The fleet scheduler swaps in a
        :class:`repro.core.fleet.PooledIasClient` (one persistent IAS
        connection shared across verifications) for the duration of a
        pooled run, then restores the original.
        """
        with self._lock:
            previous, self._ias = self._ias, client
            return previous

    def attach_kernel_pool(self, pool) -> None:
        """Dispatch the VM's CPU-bound signing work (certificate
        issuance via the embedded CA) to a
        :class:`repro.core.kernels.KernelPool`; ``None`` detaches.

        The pool is consulted *outside* the VM → CA → caches lock chain
        (the CA signs outside its own lock already), so workers hold no
        locks and the documented order is untouched.
        """
        with self._lock:
            self.ca.attach_kernel_pool(pool)

    # --------------------------------------------------------------- trust

    def controller_truststore(self) -> Truststore:
        """What the controller is provisioned with instead of per-client
        certificates: just this CA (paper, section 3)."""
        return Truststore([self.ca.certificate])

    def register_host_tpm(self, host_name: str,
                          aik_public: EcPublicKey) -> None:
        """Out-of-band AIK registration during host onboarding."""
        with self._lock:
            self._aiks[host_name] = aik_public

    def host_trusted(self, host_name: str) -> bool:
        """Is ``host_name`` currently appraised as trustworthy?"""
        with self._lock:
            record = self._hosts.get(host_name)
            return record is not None and record.trusted

    def _credential_rng(self, vnf_name: str) -> HmacDrbg:
        """The DRBG that generates ``vnf_name``'s credential material.

        Cached per VNF so a re-enrollment *continues* the stream (and
        therefore yields a fresh key) instead of replaying the old one.
        """
        with self._lock:
            rng = self._credential_rngs.get(vnf_name)
            if rng is None:
                rng = HmacDrbg(
                    self._credential_root,
                    personalization=b"credential:" + vnf_name.encode("utf-8"),
                )
                self._credential_rngs[vnf_name] = rng
            return rng

    # ------------------------------------------------------- steps 1 and 2

    def attest_host(self, agent: HostAgentClient,
                    host_name: str) -> AppraisalResult:
        """Remote-attest a container host and appraise its IML.

        Raises:
            AttestationFailed: IAS rejection, wrong enclave identity, or
                broken evidence binding.  Appraisal failures are returned
                in the result (and recorded), not raised, so callers can
                inspect them.
        """
        tel = self._telemetry
        if tel is None:
            return self._attest_host(agent, host_name)
        start = tel.now()
        outcome = "error"
        try:
            with tel.span("host-attestation", host=host_name):
                result = self._attest_host(agent, host_name)
            outcome = "trusted" if result.trustworthy else "rejected"
            return result
        finally:
            tel.host_attestation_seconds.labels(result=outcome).observe(
                tel.now() - start
            )

    def _attest_host(self, agent: HostAgentClient,
                     host_name: str) -> AppraisalResult:
        nonce = self._rng.random_bytes(16)
        evidence = agent.attest_host(nonce, self.policy.basename)
        self._verify_quote_with_ias(evidence.quote, nonce, host_name)
        self._check_identity(
            evidence.quote, self.policy.expected_attestation_mrenclave,
            host_name, "attestation enclave",
        )
        expected_binding = attestation_report_data(
            evidence.iml_bytes, evidence.aggregate,
            evidence.tpm_quote_bytes, nonce,
        )
        if evidence.quote.report_data != expected_binding:
            self.audit.record(ev.EVENT_HOST_REJECTED, host_name,
                              "evidence binding mismatch")
            raise AttestationFailed(
                f"{host_name}: quote does not bind the shipped evidence"
            )
        result = self.appraisal_engine.appraise(
            evidence.iml_bytes,
            evidence.aggregate,
            tpm_quote_bytes=evidence.tpm_quote_bytes,
            aik_public=self._aiks.get(host_name),
            nonce=nonce,
        )
        if self._clock is not None:
            self._clock.advance(
                result.entries_checked * self.APPRAISAL_SECONDS_PER_ENTRY,
                "appraisal-compute",
            )
        with self._lock:
            self._hosts[host_name] = HostTrustRecord(
                host_name, self._now(), result
            )
        if result.trustworthy:
            self.audit.record(ev.EVENT_HOST_ATTESTED, host_name,
                              f"{result.entries_checked} IML entries")
        else:
            self.audit.record(ev.EVENT_APPRAISAL_FAILED, host_name,
                              "; ".join(result.failures))
        return result

    # ------------------------------------------------------- steps 3 and 4

    def attest_vnf(self, agent: HostAgentClient, host_name: str,
                   vnf_name: str) -> bytes:
        """Attest a VNF enclave; returns its bound delivery public key.

        The host must have passed appraisal first ("the protocol continues
        only if the host is considered trustworthy").
        """
        tel = self._telemetry
        if tel is None:
            return self._attest_vnf(agent, host_name, vnf_name)
        with tel.span("enclave-attestation", vnf=vnf_name, host=host_name), \
                tel.time(tel.vnf_attestation_seconds.labels(
                    variant="delivery")):
            return self._attest_vnf(agent, host_name, vnf_name)

    def _attest_vnf(self, agent: HostAgentClient, host_name: str,
                    vnf_name: str) -> bytes:
        if not self.host_trusted(host_name):
            raise AttestationFailed(
                f"refusing to attest VNF {vnf_name}: host {host_name} is "
                "not trusted"
            )
        vm_nonce = self._rng.random_bytes(16)
        delivery_public = agent.begin_provisioning(vnf_name, vm_nonce)
        quote = Quote.from_bytes(agent.quote_vnf(vnf_name,
                                                 self.policy.basename))
        self._verify_quote_with_ias(quote, vm_nonce, vnf_name)
        self._check_identity(
            quote, self.policy.expected_credential_mrenclave,
            vnf_name, "credential enclave",
        )
        if quote.report_data != binding_hash(delivery_public, vm_nonce):
            self.audit.record(ev.EVENT_VNF_REJECTED, vnf_name,
                              "delivery key binding mismatch")
            raise AttestationFailed(
                f"{vnf_name}: quote does not bind the delivery key"
            )
        self.audit.record(ev.EVENT_VNF_ATTESTED, vnf_name, f"on {host_name}")
        return delivery_public

    # --------------------------------------------------------------- step 5

    def enroll_vnf(self, agent: HostAgentClient, host_name: str,
                   vnf_name: str, controller_address: str,
                   server_anchors: Optional[Truststore] = None,
                   serial: Optional[int] = None) -> Certificate:
        """Attest, issue, and provision credentials for one VNF.

        Returns the issued client certificate.  The private key is
        generated here, delivered encrypted, and never stored by the VM.

        Args:
            serial: a certificate serial previously obtained from
                :meth:`repro.pki.ca.CertificateAuthority.reserve_serial`;
                ``None`` allocates the next one.  Fleet schedulers reserve
                serials in submission order so pooled and serial
                enrollments issue byte-identical certificates.
        """
        tel = self._telemetry
        if tel is None:
            return self._enroll_vnf(agent, host_name, vnf_name,
                                    controller_address, server_anchors,
                                    serial=serial)
        with tel.span("credential-provisioning", vnf=vnf_name,
                      variant="delivery"), \
                tel.time(tel.provisioning_seconds.labels(variant="delivery")):
            certificate = self._enroll_vnf(agent, host_name, vnf_name,
                                           controller_address, server_anchors,
                                           serial=serial)
        tel.credentials_issued.labels(variant="delivery").inc()
        tel.enrolled_vnfs.set(len(self._issued))
        return certificate

    def _enroll_vnf(self, agent: HostAgentClient, host_name: str,
                    vnf_name: str, controller_address: str,
                    server_anchors: Optional[Truststore] = None,
                    serial: Optional[int] = None
                    ) -> Certificate:
        delivery_public = self.attest_vnf(agent, host_name, vnf_name)
        credential_rng = self._credential_rng(vnf_name)

        with (self._telemetry.span("credential-issuance", vnf=vnf_name)
              if self._telemetry is not None else nullcontext()):
            client_key = generate_keypair(credential_rng)
            certificate = self.ca.issue(
                subject=DistinguishedName(vnf_name, "vnf"),
                public_key_bytes=client_key.public.to_bytes(),
                now=int(self._now()),
                validity=self.policy.credential_validity,
                key_usage=(KEY_USAGE_CLIENT_AUTH,),
                serial=serial,
            )
        self.audit.record(ev.EVENT_CREDENTIAL_ISSUED, vnf_name,
                          f"serial {certificate.serial}")
        anchors = server_anchors or self.controller_truststore()
        bundle = CredentialBundle(
            private_key_bytes=client_key.to_bytes(),
            certificate_chain=(certificate.to_bytes(),),
            controller_anchors=tuple(
                anchor.to_bytes() for anchor in anchors.anchors()
            ),
            controller_address=controller_address,
        )
        message = encrypt_bundle(delivery_public, bundle, credential_rng)
        subject = agent.complete_provisioning(vnf_name, message.to_bytes())
        if subject != vnf_name:
            raise VnfSgxError(
                f"provisioning confirmation mismatch: {subject!r}"
            )
        with self._lock:
            self._issued[vnf_name] = certificate
            self._vnf_host[vnf_name] = host_name
        self.audit.record(ev.EVENT_CREDENTIAL_PROVISIONED, vnf_name,
                          f"serial {certificate.serial}")
        return certificate

    def enroll_vnf_csr(self, agent: HostAgentClient, host_name: str,
                       vnf_name: str, controller_address: str,
                       server_anchors: Optional[Truststore] = None,
                       serial: Optional[int] = None
                       ) -> Certificate:
        """The CSR provisioning variant: the key pair is generated *inside*
        the enclave and never exists anywhere else — not even at the VM.

        The enclave's quote binds the CSR's public key (same report-data
        construction as the delivery key), so a man-in-the-middle cannot
        substitute its own CSR; the CSR's self-signature proves key
        possession on top.
        """
        tel = self._telemetry
        if tel is None:
            return self._enroll_vnf_csr(agent, host_name, vnf_name,
                                        controller_address, server_anchors,
                                        serial=serial)
        with tel.span("credential-provisioning", vnf=vnf_name,
                      variant="csr"), \
                tel.time(tel.provisioning_seconds.labels(variant="csr")):
            certificate = self._enroll_vnf_csr(
                agent, host_name, vnf_name, controller_address,
                server_anchors, serial=serial,
            )
        tel.credentials_issued.labels(variant="csr").inc()
        tel.enrolled_vnfs.set(len(self._issued))
        return certificate

    def _enroll_vnf_csr(self, agent: HostAgentClient, host_name: str,
                        vnf_name: str, controller_address: str,
                        server_anchors: Optional[Truststore] = None,
                        serial: Optional[int] = None
                        ) -> Certificate:
        from repro.pki.csr import CertificateSigningRequest

        if not self.host_trusted(host_name):
            raise AttestationFailed(
                f"refusing to enrol VNF {vnf_name}: host {host_name} is "
                "not trusted"
            )
        vm_nonce = self._rng.random_bytes(16)
        csr_bytes = agent.generate_csr(vnf_name, vnf_name, vm_nonce)
        csr = CertificateSigningRequest.from_bytes(csr_bytes)
        csr.verify_proof_of_possession()
        if csr.subject.common_name != vnf_name:
            raise AttestationFailed(
                f"CSR names {csr.subject.common_name!r}, expected "
                f"{vnf_name!r}"
            )
        quote = Quote.from_bytes(agent.quote_vnf(vnf_name,
                                                 self.policy.basename))
        self._verify_quote_with_ias(quote, vm_nonce, vnf_name)
        self._check_identity(
            quote, self.policy.expected_credential_mrenclave,
            vnf_name, "credential enclave",
        )
        if quote.report_data != binding_hash(csr.public_key_bytes, vm_nonce):
            self.audit.record(ev.EVENT_VNF_REJECTED, vnf_name,
                              "CSR key binding mismatch")
            raise AttestationFailed(
                f"{vnf_name}: quote does not bind the CSR key"
            )
        self.audit.record(ev.EVENT_VNF_ATTESTED, vnf_name,
                          f"on {host_name} (csr)")
        certificate = self.ca.issue_from_csr(
            csr, now=int(self._now()),
            validity=self.policy.credential_validity,
            serial=serial,
        )
        self.audit.record(ev.EVENT_CREDENTIAL_ISSUED, vnf_name,
                          f"serial {certificate.serial} (csr)")
        anchors = server_anchors or self.controller_truststore()
        subject = agent.install_certificate(
            vnf_name, certificate.to_bytes(),
            [anchor.to_bytes() for anchor in anchors.anchors()],
            controller_address,
        )
        if subject != vnf_name:
            raise VnfSgxError(
                f"certificate installation confirmation mismatch: "
                f"{subject!r}"
            )
        with self._lock:
            self._issued[vnf_name] = certificate
            self._vnf_host[vnf_name] = host_name
        self.audit.record(ev.EVENT_CREDENTIAL_PROVISIONED, vnf_name,
                          f"serial {certificate.serial} (csr)")
        return certificate

    # ---------------------------------------------------------------- RA-TLS

    def verify_ratls_evidence(self, quote: Quote, subject: str) -> None:
        """RA-TLS evidence hook: verify an embedded quote via the IAS
        path with verdict memoisation.

        The nonce is **empty** by design: the quote inside an RA-TLS
        certificate is generated once (report-data binds the leaf key,
        not a challenge) and re-presented verbatim on every reconnect,
        so the :class:`VerificationCache` answers every handshake after
        the first without an IAS round trip.  Handshake freshness comes
        from the TLS proof of key possession instead.
        """
        self._verify_quote_with_ias(quote, b"", subject)

    def check_credential_identity(self, quote: Quote, subject: str) -> None:
        """RA-TLS identity hook: the embedded quote must name the
        credential-enclave measurement and satisfy SVN/debug policy."""
        self._check_identity(
            quote, self.policy.expected_credential_mrenclave,
            subject, "credential enclave",
        )

    def ratls_verifier(self):
        """A :class:`repro.tls.ratls.RatlsVerifier` wired to this VM's
        IAS path, identity policy, clock, and revocation flow.

        Every verifier created here is remembered so :meth:`revoke_vnf`
        and :meth:`distrust_host` extend to attested identities that
        hold no CA-issued certificate.
        """
        from repro.tls.ratls import RatlsVerifier

        verifier = RatlsVerifier(
            verify_evidence=self.verify_ratls_evidence,
            check_identity=self.check_credential_identity,
            now=self._now,
            telemetry=self._telemetry,
        )
        with self._lock:
            self._ratls_verifiers.append(verifier)
        return verifier

    # ------------------------------------------------------------ revocation

    def subscribe_crl(self, tls_config) -> None:
        """Register a TLS config (e.g. the controller's) for CRL pushes."""
        with self._lock:
            self._crl_subscribers.append(tls_config)
            tls_config.crl = self.ca.current_crl(int(self._now()))

    def revoke_vnf(self, vnf_name: str,
                   reason: str = REASON_UNSPECIFIED) -> None:
        """Revoke a VNF's credentials and push the fresh CRL.

        Atomic under the VM lock: a concurrent enrollment never observes
        the window between the CA marking the serial revoked and the CRL
        push / cache flush (lock ordering: VM lock, then CA lock, then
        cache locks).
        """
        with self._lock:
            certificate = self._issued.get(vnf_name)
            verifiers = list(self._ratls_verifiers)
            if certificate is None and not any(
                    v.knows_subject(vnf_name) for v in verifiers):
                raise RevocationError(
                    f"no credentials issued to {vnf_name!r}"
                )
            if certificate is not None:
                self.ca.revoke(certificate.serial, int(self._now()), reason)
                self._publish_crl()
            # A revoked VNF must not keep a memoised "trustworthy"
            # verdict: a retry replaying its old evidence has to face IAS
            # again.
            self.verification_cache.invalidate_subject(vnf_name)
        # RA-TLS identities hold no CA serial, so the CRL cannot reach
        # them: the verifier denylists the subject and evicts its cached
        # TLS sessions instead.  Outside the VM lock — the verifier's
        # eviction sweep takes session-cache locks of its own.
        for verifier in verifiers:
            verifier.revoke_subject(vnf_name)
        detail = (f"serial {certificate.serial} ({reason})"
                  if certificate is not None else f"ratls ({reason})")
        self.audit.record(ev.EVENT_CREDENTIAL_REVOKED, vnf_name, detail)

    def distrust_host(self, host_name: str) -> List[str]:
        """Mark a host untrusted and revoke the credentials enrolled *on
        that host* (others are unaffected — the containment property).

        Returns the names of the revoked VNFs.  (Platform-level EPID
        revocation at IAS is the operator's separate step.)
        """
        with self._lock:
            record = self._hosts.get(host_name)
            # A host serving only RA-TLS identities was never
            # host-attested, yet its enclaves must still be revocable
            # (verifier.knows_host takes only the ratls leaf lock).
            if record is None and not any(
                    verifier.knows_host(host_name)
                    for verifier in self._ratls_verifiers):
                raise RevocationError(
                    f"host {host_name!r} was never attested"
                )
            if record is not None:
                record.revoked = True
            self.audit.record(ev.EVENT_PLATFORM_REVOKED, host_name)
            revoked = []
            for vnf_name, certificate in list(self._issued.items()):
                if self._vnf_host.get(vnf_name) != host_name:
                    continue
                self.ca.revoke(certificate.serial, int(self._now()),
                               REASON_PLATFORM_UNTRUSTED)
                revoked.append(vnf_name)
            if revoked:
                self._publish_crl()
            # Flush memoised IAS verdicts for the host *and* everything
            # that was enrolled on it (SessionCache.invalidate_where
            # pattern): the platform's trust state just changed, so
            # byte-identical evidence must be re-verified, not replayed
            # from cache.
            doomed = set(revoked) | {host_name}
            self.verification_cache.invalidate_where(
                lambda entry: entry.subject in doomed
            )
            verifiers = list(self._ratls_verifiers)
        # RA-TLS identities enrolled on the host: denylist them and evict
        # their sessions (outside the VM lock — see revoke_vnf), then
        # flush their memoised IAS verdicts too.
        ratls_doomed = set()
        for verifier in verifiers:
            ratls_doomed.update(verifier.revoke_host(host_name))
        ratls_doomed -= set(revoked)
        if ratls_doomed:
            revoked.extend(sorted(ratls_doomed))
            self.verification_cache.invalidate_where(
                lambda entry: entry.subject in ratls_doomed
            )
        return revoked

    def _publish_crl(self) -> None:
        # Callers hold the VM lock; subscriber TLS configs are refreshed
        # before any other thread can see the revocation half-applied.
        crl = self.ca.current_crl(int(self._now()))
        for config in self._crl_subscribers:
            config.crl = crl
            # Resumed sessions bypass certificate validation, so evict any
            # cached session that was authenticated by a now-revoked cert.
            if config.session_cache is not None:
                config.session_cache.invalidate_where(
                    lambda session: (
                        session.peer_certificate is not None
                        and crl.is_revoked(session.peer_certificate.serial)
                    )
                )

    # -------------------------------------------------------------- helpers

    def issued_certificate(self, vnf_name: str) -> Certificate:
        """The current certificate for an enrolled VNF."""
        with self._lock:
            try:
                return self._issued[vnf_name]
            except KeyError as exc:
                raise VnfSgxError(f"{vnf_name!r} is not enrolled") from exc

    def _verify_quote_with_ias(self, quote: Quote, nonce: bytes,
                               subject: str) -> None:
        tel = self._telemetry
        quote_bytes = quote.to_bytes()
        nonce_hex = nonce.hex()
        avr = self.verification_cache.lookup(quote_bytes, nonce_hex)
        cached = avr is not None
        if tel is not None:
            tel.verification_cache_events.labels(
                result="hit" if cached else "miss"
            ).inc()
        if not cached:
            if tel is None:
                avr = self._ias.verify_quote(quote_bytes, nonce=nonce_hex)
            else:
                with tel.span("ias-verification", subject=subject) as span, \
                        tel.time(tel.ias_verification_seconds.labels()):
                    avr = self._ias.verify_quote(quote_bytes,
                                                 nonce=nonce_hex)
                    span.set_attribute("status", avr.quote_status)
        # The binding / verdict checks run even on a cache hit: they are
        # cheap, and keeping them unconditional means a cache bug can
        # never turn a rejected quote into an accepted one.
        if avr.isv_enclave_quote_body != quote.body_bytes().hex():
            raise AttestationFailed(
                f"{subject}: AVR covers a different quote body"
            )
        if not avr.ok:
            self.audit.record(ev.EVENT_HOST_REJECTED, subject,
                              f"IAS verdict {avr.quote_status}")
            raise AttestationFailed(
                f"{subject}: IAS verdict {avr.quote_status}"
            )
        if not cached:
            # Only verdicts that passed every check above are memoised.
            self.verification_cache.store(quote_bytes, nonce_hex, subject,
                                          avr)

    def _check_identity(self, quote: Quote, expected_mrenclave: bytes,
                        subject: str, kind: str) -> None:
        if quote.mrenclave != expected_mrenclave:
            self.audit.record(ev.EVENT_HOST_REJECTED, subject,
                              f"wrong {kind} measurement")
            raise AttestationFailed(
                f"{subject}: {kind} MRENCLAVE "
                f"{quote.mrenclave.hex()[:16]}... does not match policy"
            )
        if not self.policy.check_enclave_svn(quote.isv_svn):
            raise AttestationFailed(
                f"{subject}: {kind} SVN {quote.isv_svn} below policy floor "
                f"{self.policy.min_isv_svn}"
            )
        if quote.debug and not self.policy.allow_debug_enclaves:
            self.audit.record(ev.EVENT_HOST_REJECTED, subject,
                              f"DEBUG {kind}")
            raise AttestationFailed(
                f"{subject}: {kind} runs with the DEBUG attribute — its "
                "memory is host-readable, refusing to trust it"
            )
