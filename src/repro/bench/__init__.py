"""Shared benchmark infrastructure: result tables and workload generators."""

from repro.bench.harness import Measurement, Table, measure
from repro.bench.workloads import (
    deployment_with_iml_size,
    fleet_deployment,
    synthetic_files,
)

__all__ = [
    "Measurement",
    "Table",
    "measure",
    "deployment_with_iml_size",
    "fleet_deployment",
    "synthetic_files",
]
