"""Shared benchmark infrastructure: result tables and workload generators."""

from repro.bench.harness import (
    Measurement,
    Recorder,
    Summary,
    Table,
    measure,
    summarize,
)
from repro.bench.workloads import (
    deployment_with_iml_size,
    fleet_deployment,
    synthetic_files,
)

__all__ = [
    "Measurement",
    "Recorder",
    "Summary",
    "Table",
    "measure",
    "summarize",
    "deployment_with_iml_size",
    "fleet_deployment",
    "synthetic_files",
]
