"""Workload generators for the experiments in EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.workflow import Deployment
from repro.sgx.ecall import CostModel


def synthetic_files(count: int, prefix: str = "/usr/lib/pkg",
                    size: int = 64) -> Dict[str, bytes]:
    """``count`` deterministic measured files (distinct contents)."""
    return {
        f"{prefix}-{index:05d}.so": (f"content-{index:05d}-".encode()
                                     * (size // 16 + 1))[:size]
        for index in range(count)
    }


def deployment_with_iml_size(iml_entries: int, seed: bytes = b"iml-bench",
                             with_tpm: bool = False,
                             vnf_count: int = 1) -> Deployment:
    """A deployment whose host has roughly ``iml_entries`` IML entries.

    Extra measured files are installed (and whitelisted) before boot-time
    measurement, so the attestation evidence scales with ``iml_entries``.
    """
    from repro.containers.host import DEFAULT_OS_FILES

    extra = max(0, iml_entries - len(DEFAULT_OS_FILES) - 2)
    os_files = dict(DEFAULT_OS_FILES)
    os_files.update(synthetic_files(extra))
    deployment = _deployment_with_os_files(os_files, seed, with_tpm,
                                           vnf_count)
    return deployment


def _deployment_with_os_files(os_files: Dict[str, bytes], seed: bytes,
                              with_tpm: bool, vnf_count: int) -> Deployment:
    # Deployment builds its own host; patch the OS file set by building the
    # deployment with a host constructed around the enlarged file list.
    import repro.containers.host as host_module

    original = host_module.DEFAULT_OS_FILES
    host_module.DEFAULT_OS_FILES = os_files
    try:
        return Deployment(seed=seed, vnf_count=vnf_count, with_tpm=with_tpm)
    finally:
        host_module.DEFAULT_OS_FILES = original


def fleet_deployment(vnf_count: int, seed: bytes = b"fleet-bench",
                     client_validation: str = "ca",
                     cost_model: Optional[CostModel] = None) -> Deployment:
    """A deployment sized for enrolment-throughput experiments."""
    return Deployment(
        seed=seed,
        vnf_count=vnf_count,
        client_validation=client_validation,
        cost_model=cost_model,
    )
