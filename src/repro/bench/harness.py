"""Benchmark reporting helpers.

Every experiment prints its rows through :class:`Table`, so benchmark
output reads like the tables a paper would carry.  :func:`measure` wraps a
callable and reports both *simulated* time (virtual clock — machine
independent, what the experiment shapes are judged on) and wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.net.clock import VirtualClock


@dataclass
class Measurement:
    """One measured operation."""

    result: Any
    simulated_seconds: float
    wall_seconds: float


def measure(clock: Optional[VirtualClock], fn: Callable[[], Any]) -> Measurement:
    """Run ``fn`` and capture simulated + wall time around it."""
    sim_start = clock.now() if clock is not None else 0.0
    wall_start = time.perf_counter()
    result = fn()
    return Measurement(
        result=result,
        simulated_seconds=(clock.now() - sim_start) if clock is not None else 0.0,
        wall_seconds=time.perf_counter() - wall_start,
    )


class Table:
    """A fixed-column text table printed to stdout (and kept for asserts)."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[Tuple] = []

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def render(self) -> str:
        """The formatted table."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        ))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table (pytest -s makes it visible)."""
        print("\n" + self.render())

    def column(self, name: str) -> List[Any]:
        """All values of one column, by name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]
