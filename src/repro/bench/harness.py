"""Benchmark reporting helpers.

Every experiment prints its rows through :class:`Table`, so benchmark
output reads like the tables a paper would carry.  :func:`measure` wraps a
callable and reports both *simulated* time (virtual clock — machine
independent, what the experiment shapes are judged on) and wall time.
:func:`summarize` condenses repeated samples into the min/median/p90/max
row the experiment tables cite, and :class:`Recorder` streams measurements
into a metrics registry so tables can also quote histogram percentiles.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.net.clock import VirtualClock
from repro.obs import Histogram, MetricsRegistry


@dataclass
class Measurement:
    """One measured operation."""

    result: Any
    simulated_seconds: float
    wall_seconds: float


def measure(clock: Optional[VirtualClock], fn: Callable[[], Any]) -> Measurement:
    """Run ``fn`` and capture simulated + wall time around it."""
    sim_start = clock.now() if clock is not None else 0.0
    wall_start = time.perf_counter()
    result = fn()
    return Measurement(
        result=result,
        simulated_seconds=(clock.now() - sim_start) if clock is not None else 0.0,
        wall_seconds=time.perf_counter() - wall_start,
    )


@dataclass(frozen=True)
class Summary:
    """Distribution summary over repeated samples."""

    count: int
    minimum: float
    median: float
    p90: float
    maximum: float

    def row(self, scale: float = 1.0) -> Tuple[float, float, float, float]:
        """``(min, median, p90, max)`` with an optional unit scale
        (e.g. ``1e3`` for milliseconds)."""
        return (self.minimum * scale, self.median * scale,
                self.p90 * scale, self.maximum * scale)


def _nearest_rank(ordered: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile on an already-sorted sequence."""
    if not ordered:
        raise ValueError("cannot take a percentile of zero samples")
    rank = max(1, math.ceil(quantile * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize(samples: Sequence[float]) -> Summary:
    """Condense ``samples`` into min/median/p90/max (nearest-rank)."""
    if not samples:
        raise ValueError("summarize() needs at least one sample")
    ordered = sorted(samples)
    return Summary(
        count=len(ordered),
        minimum=ordered[0],
        median=_nearest_rank(ordered, 0.50),
        p90=_nearest_rank(ordered, 0.90),
        maximum=ordered[-1],
    )


class Recorder:
    """Streams measurements into a metrics registry.

    Experiments that want their tables backed by the same histogram
    machinery the telemetry subsystem uses can attach a
    :class:`~repro.obs.MetricsRegistry` (or let the recorder create one)
    and observe every measurement under a named series::

        recorder = Recorder()
        recorder.observe("e4_request_seconds", m.simulated_seconds,
                         placement="enclave")
        recorder.summary("e4_request_seconds", placement="enclave")
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def _histogram(self, name: str, labelnames: Sequence[str]) -> Histogram:
        if name in self.registry:
            return self.registry.get(name)
        return self.registry.histogram(
            name, f"benchmark samples for {name}",
            labelnames=tuple(labelnames),
        )

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one sample under ``name`` (labels create the series on
        first use; later calls must use the same label names)."""
        histogram = self._histogram(name, sorted(labels))
        histogram.labels(**labels).observe(value)

    def summary(self, name: str, **labels: str) -> dict:
        """The histogram child's summary dict (count/sum/p50/p90/p99)."""
        return self.registry.get(name).labels(**labels).summary()


class Table:
    """A fixed-column text table printed to stdout (and kept for asserts)."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[Tuple] = []

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def render(self) -> str:
        """The formatted table."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        ))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table (pytest -s makes it visible)."""
        print("\n" + self.render())

    def column(self, name: str) -> List[Any]:
        """All values of one column, by name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]
