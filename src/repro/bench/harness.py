"""Benchmark reporting helpers.

Every experiment prints its rows through :class:`Table`, so benchmark
output reads like the tables a paper would carry.  :func:`measure` wraps a
callable and reports both *simulated* time (virtual clock — machine
independent, what the experiment shapes are judged on) and wall time.
:func:`summarize` condenses repeated samples into the min/median/p90/max
row the experiment tables cite, and :class:`Recorder` streams measurements
into a metrics registry so tables can also quote histogram percentiles.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.clock import VirtualClock
from repro.obs import Histogram, MetricsRegistry

#: Environment variable: directory BENCH_E*.json files are written to.
#: Unset (the default) means no files are written — local runs stay clean.
BENCH_JSON_DIR_ENV = "BENCH_JSON_DIR"

#: Environment variable: non-empty/non-zero shrinks benchmark workloads to
#: CI-smoke size (fewer iterations, same assertions on result *shape*).
BENCH_SMOKE_ENV = "BENCH_SMOKE"


def smoke_mode() -> bool:
    """True when the bench suite should run in CI-smoke size."""
    return os.environ.get(BENCH_SMOKE_ENV, "") not in ("", "0")


@dataclass
class Measurement:
    """One measured operation."""

    result: Any
    simulated_seconds: float
    wall_seconds: float


def measure(clock: Optional[VirtualClock], fn: Callable[[], Any]) -> Measurement:
    """Run ``fn`` and capture simulated + wall time around it."""
    sim_start = clock.now() if clock is not None else 0.0
    wall_start = time.perf_counter()
    result = fn()
    return Measurement(
        result=result,
        simulated_seconds=(clock.now() - sim_start) if clock is not None else 0.0,
        wall_seconds=time.perf_counter() - wall_start,
    )


@dataclass(frozen=True)
class Summary:
    """Distribution summary over repeated samples."""

    count: int
    minimum: float
    median: float
    p90: float
    maximum: float

    def row(self, scale: float = 1.0) -> Tuple[float, float, float, float]:
        """``(min, median, p90, max)`` with an optional unit scale
        (e.g. ``1e3`` for milliseconds)."""
        return (self.minimum * scale, self.median * scale,
                self.p90 * scale, self.maximum * scale)


def _nearest_rank(ordered: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile on an already-sorted sequence."""
    if not ordered:
        raise ValueError("cannot take a percentile of zero samples")
    rank = max(1, math.ceil(quantile * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize(samples: Sequence[float]) -> Summary:
    """Condense ``samples`` into min/median/p90/max (nearest-rank)."""
    if not samples:
        raise ValueError("summarize() needs at least one sample")
    ordered = sorted(samples)
    return Summary(
        count=len(ordered),
        minimum=ordered[0],
        median=_nearest_rank(ordered, 0.50),
        p90=_nearest_rank(ordered, 0.90),
        maximum=ordered[-1],
    )


class Recorder:
    """Streams measurements into a metrics registry.

    Experiments that want their tables backed by the same histogram
    machinery the telemetry subsystem uses can attach a
    :class:`~repro.obs.MetricsRegistry` (or let the recorder create one)
    and observe every measurement under a named series::

        recorder = Recorder()
        recorder.observe("e4_request_seconds", m.simulated_seconds,
                         placement="enclave")
        recorder.summary("e4_request_seconds", placement="enclave")
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def _histogram(self, name: str, labelnames: Sequence[str]) -> Histogram:
        # The registry's get-or-create enforces kind *and* labelname
        # agreement with the first registration.  (The old code returned
        # any existing metric unchecked, so observing with a different
        # label set silently mis-filed samples instead of failing.)
        return self.registry.histogram(
            name, f"benchmark samples for {name}",
            labelnames=tuple(labelnames),
        )

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one sample under ``name`` (labels create the series on
        first use; later calls must use the same label names)."""
        histogram = self._histogram(name, sorted(labels))
        histogram.labels(**labels).observe(value)

    def summary(self, name: str, **labels: str) -> dict:
        """The histogram child's summary dict (count/sum/p50/p90/p99)."""
        return self.registry.get(name).labels(**labels).summary()


class BenchReport:
    """Machine-readable benchmark output: one ``BENCH_<id>.json`` per
    experiment.

    Rows carry named scalar metadata plus optional *simulated* and *wall*
    :class:`Summary` distributions (the same :func:`summarize` output the
    text tables quote), so CI can track the perf trajectory numerically::

        report = BenchReport("E11")
        report.add("ecdsa_verify", wall=summarize(samples),
                   iterations=len(samples), speedup=3.4)
        report.add_table(table)          # mirror a text table verbatim
        report.write()                   # no-op unless BENCH_JSON_DIR set

    Writing is opt-in through the ``BENCH_JSON_DIR`` environment variable
    (the CI bench-smoke job sets it and uploads the directory as an
    artifact); local runs leave no files behind unless asked.
    """

    def __init__(self, experiment: str,
                 directory: Optional[str] = None) -> None:
        self.experiment = experiment
        self._directory = (directory if directory is not None
                           else os.environ.get(BENCH_JSON_DIR_ENV))
        self.rows: List[Dict[str, Any]] = []
        self.tables: List[Dict[str, Any]] = []

    def add(self, name: str, simulated: Optional[Summary] = None,
            wall: Optional[Summary] = None, **meta: Any) -> None:
        """Record one named measurement row."""
        row: Dict[str, Any] = {"name": name}
        if simulated is not None:
            row["simulated"] = asdict(simulated)
        if wall is not None:
            row["wall"] = asdict(wall)
        row.update(meta)
        self.rows.append(row)

    def add_table(self, table: "Table") -> None:
        """Mirror a rendered text table into the JSON payload."""
        self.tables.append({
            "title": table.title,
            "columns": list(table.columns),
            "rows": [list(row) for row in table.rows],
        })

    def payload(self) -> Dict[str, Any]:
        """The full JSON-serialisable document."""
        return {
            "experiment": self.experiment,
            "smoke": smoke_mode(),
            "rows": self.rows,
            "tables": self.tables,
        }

    def write(self) -> Optional[str]:
        """Write ``BENCH_<experiment>.json``; returns the path, or ``None``
        when no output directory is configured."""
        if not self._directory:
            return None
        os.makedirs(self._directory, exist_ok=True)
        path = os.path.join(self._directory,
                            f"BENCH_{self.experiment}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


class Table:
    """A fixed-column text table printed to stdout (and kept for asserts)."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[Tuple] = []

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def render(self) -> str:
        """The formatted table."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        ))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table (pytest -s makes it visible)."""
        print("\n" + self.render())

    def column(self, name: str) -> List[Any]:
        """All values of one column, by name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]
