"""Reliable duplex byte-stream channels.

Delivery is synchronous: ``send`` charges link latency to the virtual clock
and either appends to the peer's receive buffer (for blocking-style readers)
or invokes the peer's registered receive handler inline (for event-driven
servers).  Because a conversation is synchronous, a blocking ``recv`` that
finds an empty buffer is a protocol bug, and the channel says so loudly
instead of deadlocking.

Threading model: a channel *pair* is a lockstep request/response rail —
the server side's handler runs inline in the connecting thread, so one
entire conversation executes on one thread.  Concurrent fleet sessions
each open their own connections; anything that *shares* a connection
across threads (e.g. the pooled IAS client in :mod:`repro.core.fleet`)
must serialize whole request/response exchanges with its own lock.
See ``docs/CONCURRENCY.md``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ChannelClosed, NetError


class Channel:
    """One endpoint of a connected duplex byte stream.

    Channels are created in pairs by :class:`repro.net.simnet.Network`;
    user code never constructs them directly.
    """

    def __init__(self, label: str, deliver: Callable[["Channel", bytes], None],
                 notify_close: Callable[["Channel"], None]) -> None:
        self.label = label
        self._deliver = deliver          # pushes bytes toward the peer
        self._notify_close = notify_close
        self._rx = bytearray()
        self._closed = False
        self._peer_closed = False
        self._on_receive: Optional[Callable[["Channel"], None]] = None
        self.peer: Optional["Channel"] = None  # wired by the Network

    # ------------------------------------------------------------- sending

    def send(self, data: bytes) -> None:
        """Send ``data`` to the peer (synchronous delivery)."""
        if self._closed:
            raise ChannelClosed(f"send on closed channel {self.label}")
        if self._peer_closed:
            raise ChannelClosed(f"peer of {self.label} is closed")
        if data:
            self._deliver(self, bytes(data))

    # ------------------------------------------------------------ receiving

    def _enqueue(self, data: bytes) -> None:
        """Called by the network when bytes arrive from the peer."""
        if self._closed:
            return  # bytes to a closed endpoint are dropped
        self._rx += data
        if self._on_receive is not None:
            self._on_receive(self)

    def on_receive(self, handler: Optional[Callable[["Channel"], None]]) -> None:
        """Register an inline receive handler (event-driven endpoints).

        The handler is invoked after every delivery with this channel as
        argument; it should consume from :meth:`recv_available` /
        :meth:`recv_exactly`.
        """
        self._on_receive = handler
        if handler is not None and self._rx:
            handler(self)

    @property
    def bytes_available(self) -> int:
        """Number of bytes currently readable."""
        return len(self._rx)

    def recv_available(self) -> bytes:
        """Drain and return everything currently buffered."""
        data = bytes(self._rx)
        self._rx.clear()
        return data

    def recv_exactly(self, n: int) -> bytes:
        """Read exactly ``n`` bytes.

        Raises:
            ChannelClosed: peer closed with fewer than ``n`` bytes pending.
            NetError: the buffer is short and the peer is still open — in a
                synchronous simulation that means the protocol above lost
                lockstep, so failing fast beats deadlocking.
        """
        if n < 0:
            raise NetError("negative read size")
        if len(self._rx) < n:
            if self._peer_closed:
                raise ChannelClosed(
                    f"{self.label}: peer closed with {len(self._rx)} of {n} "
                    "bytes pending"
                )
            raise NetError(
                f"{self.label}: blocking read of {n} bytes but only "
                f"{len(self._rx)} buffered (protocol out of lockstep)"
            )
        data = bytes(self._rx[:n])
        del self._rx[:n]
        return data

    def recv_line(self, max_length: int = 16384) -> bytes:
        """Read one CRLF-terminated line (terminator stripped)."""
        idx = self._rx.find(b"\r\n")
        if idx < 0:
            if self._peer_closed:
                raise ChannelClosed(f"{self.label}: peer closed mid-line")
            raise NetError(f"{self.label}: no complete line buffered")
        if idx > max_length:
            raise NetError(f"{self.label}: line exceeds {max_length} bytes")
        line = bytes(self._rx[:idx])
        del self._rx[:idx + 2]
        return line

    # -------------------------------------------------------------- closing

    def close(self) -> None:
        """Close this endpoint; the peer observes EOF."""
        if self._closed:
            return
        self._closed = True
        self._notify_close(self)

    def _peer_did_close(self) -> None:
        self._peer_closed = True
        if self._on_receive is not None:
            self._on_receive(self)

    @property
    def closed(self) -> bool:
        """True once this endpoint has been closed locally."""
        return self._closed

    @property
    def eof(self) -> bool:
        """True when the peer closed and the buffer has been drained."""
        return self._peer_closed and not self._rx

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<Channel {self.label} {state} rx={len(self._rx)}>"
