"""Virtual time.

Everything that costs time in the simulation — link latency, enclave
transitions, crypto work modelled at a coarser grain — charges seconds to a
shared :class:`VirtualClock`.  Components also use the clock for certificate
validity and CRL freshness, so an entire deployment shares one time line.

Concurrency
-----------

Fleet enrollment (:mod:`repro.core.fleet`) drives many sessions from a
worker pool, so the clock is **thread-safe**: ``advance`` performs its
read-modify-write under an internal lock, and readers see a consistent
snapshot.  On top of the global time line the clock keeps **per-thread
local accounting**: every ``advance`` also accrues to the calling
thread's private counter, readable via :meth:`local_seconds`.  A
session that measures its own simulated cost as a delta of
``local_seconds()`` gets a number unpolluted by whatever sibling
sessions charged concurrently — and in a single-threaded run the local
delta equals the global delta, so serial and pooled runs report the
same per-step simulated timings.  See ``docs/CONCURRENCY.md``.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.analysis.sanitizer import make_lock, shared_state


@shared_state("_now", "_charges")
class VirtualClock:
    """A monotonically advancing simulated clock (thread-safe).

    Args:
        start: initial time in seconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._charges: Dict[str, float] = {}
        self._lock = make_lock("clock")
        self._local = threading.local()

    def now(self) -> float:
        """Current simulated time in seconds."""
        with self._lock:
            return self._now

    def now_seconds(self) -> int:
        """Current simulated time truncated to whole seconds (PKI uses this)."""
        return int(self.now())

    def advance(self, seconds: float, account: str = "other") -> None:
        """Advance time by ``seconds``, attributing the cost to ``account``.

        Accounts let benchmarks break total simulated time down by cause
        (link latency vs. enclave transitions vs. handshake crypto).
        The global advance and the per-account charge are applied
        atomically; the calling thread's local counter (see
        :meth:`local_seconds`) accrues the same amount.
        """
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now += seconds
            self._charges[account] = self._charges.get(account, 0.0) + seconds
        self._local.elapsed = getattr(self._local, "elapsed", 0.0) + seconds

    def local_seconds(self) -> float:
        """Simulated seconds advanced *by the calling thread*.

        Starts at 0.0 per thread and accrues every ``advance`` the thread
        performs.  In a single-threaded deployment this moves in lockstep
        with :meth:`now` (modulo the start offset), which is what makes
        pooled fleet timings comparable to serial ones.
        """
        return getattr(self._local, "elapsed", 0.0)

    def charges(self) -> Dict[str, float]:
        """Accumulated per-account charges since construction."""
        with self._lock:
            return dict(self._charges)

    def reset_charges(self) -> None:
        """Zero the per-account accounting (time itself keeps running)."""
        with self._lock:
            self._charges.clear()


class StopWatch:
    """Measures simulated time elapsed across a region of code.

    Example:
        >>> clock = VirtualClock()
        >>> with StopWatch(clock) as sw:
        ...     clock.advance(1.5)
        >>> sw.elapsed
        1.5
    """

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "StopWatch":
        self._start = self._clock.now()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = self._clock.now() - self._start
