"""Virtual time.

Everything that costs time in the simulation — link latency, enclave
transitions, crypto work modelled at a coarser grain — charges seconds to a
shared :class:`VirtualClock`.  Components also use the clock for certificate
validity and CRL freshness, so an entire deployment shares one time line.
"""

from __future__ import annotations

from typing import Dict


class VirtualClock:
    """A monotonically advancing simulated clock.

    Args:
        start: initial time in seconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._charges: Dict[str, float] = {}

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def now_seconds(self) -> int:
        """Current simulated time truncated to whole seconds (PKI uses this)."""
        return int(self._now)

    def advance(self, seconds: float, account: str = "other") -> None:
        """Advance time by ``seconds``, attributing the cost to ``account``.

        Accounts let benchmarks break total simulated time down by cause
        (link latency vs. enclave transitions vs. handshake crypto).
        """
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        self._charges[account] = self._charges.get(account, 0.0) + seconds

    def charges(self) -> Dict[str, float]:
        """Accumulated per-account charges since construction."""
        return dict(self._charges)

    def reset_charges(self) -> None:
        """Zero the per-account accounting (time itself keeps running)."""
        self._charges.clear()


class StopWatch:
    """Measures simulated time elapsed across a region of code.

    Example:
        >>> clock = VirtualClock()
        >>> with StopWatch(clock) as sw:
        ...     clock.advance(1.5)
        >>> sw.elapsed
        1.5
    """

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "StopWatch":
        self._start = self._clock.now()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = self._clock.now() - self._start
