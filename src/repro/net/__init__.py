"""In-memory simulated network with virtual time.

All protocol traffic in the library (VM <-> enclaves, VNF <-> controller,
VM <-> IAS) flows through this substrate.  A single-threaded, synchronous
delivery model is used: sending on a channel charges link latency to the
virtual clock and either buffers the bytes for a blocking reader or invokes
the peer's receive handler inline.  This makes entire end-to-end runs
deterministic and lets benchmarks report *simulated* time (machine
independent) alongside wall time.
"""

from repro.net.clock import VirtualClock
from repro.net.address import Address
from repro.net.simnet import Network, LinkProfile
from repro.net.channel import Channel
from repro.net.faults import FaultPlan
from repro.net.framing import send_frame, recv_frame
from repro.net.rest import HttpRequest, HttpResponse, RestServer
from repro.net.retry import NO_RETRY, RetryPolicy, retry_call

__all__ = [
    "VirtualClock",
    "Address",
    "Network",
    "LinkProfile",
    "Channel",
    "FaultPlan",
    "send_frame",
    "recv_frame",
    "HttpRequest",
    "HttpResponse",
    "RestServer",
    "NO_RETRY",
    "RetryPolicy",
    "retry_call",
]
