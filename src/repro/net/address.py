"""Network addresses for the simulated fabric."""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import AddressError


class Address(NamedTuple):
    """A ``host:port`` endpoint identity on the simulated network."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "Address":
        """Parse ``"host:port"`` into an :class:`Address`."""
        host, sep, port_text = text.rpartition(":")
        if not sep or not host:
            raise AddressError(f"malformed address {text!r}")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise AddressError(f"malformed port in {text!r}") from exc
        if not 0 < port < 65536:
            raise AddressError(f"port out of range in {text!r}")
        return cls(host, port)
