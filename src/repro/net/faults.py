"""Deterministic fault injection for the simulated network.

The paper's enrollment pipeline assumes a live Intel Attestation Service
and a chatty multi-step protocol; at fleet scale, partial failure is the
steady state.  A :class:`FaultPlan` models that reality: it is a
seed-driven schedule of connection refusals, latency spikes, mid-stream
drops and injected HTTP error bursts, installable on a
:class:`~repro.net.simnet.Network` via :meth:`Network.install_faults`.

Determinism is a hard requirement (the benchmark harness and the
acceptance tests compare whole workflow traces byte-for-byte): every
probabilistic decision draws from the plan's own HMAC-DRBG, every
time-based window is evaluated against the shared virtual clock, and all
injected latency is charged to the ``"fault-injection"`` clock account —
so equal seeds plus equal plans give identical failure traces.

Fault vocabulary:

- :meth:`FaultPlan.refuse_connections` — SYN-to-nowhere: ``connect`` to
  the address raises :class:`~repro.errors.ConnectionRefused` for the
  next N attempts and/or for a simulated-time window.
- :meth:`FaultPlan.crash_host` / :meth:`FaultPlan.partition` —
  host-level failure modes for controller failover: a crashed host
  refuses every port, a partitioned pair refuses only each other.
- :meth:`FaultPlan.delay_connect` / :meth:`FaultPlan.delay_send` —
  latency spikes charged on top of the link profile.
- :meth:`FaultPlan.drop_after_sends` — mid-stream channel drop: the
  K-th send on a matching connection tears the connection down and
  raises :class:`~repro.errors.ChannelClosed`.
- :meth:`FaultPlan.drop_send_probability` — DRBG-driven random drops.
- :meth:`FaultPlan.http_error` — application-level failure schedule
  ("IAS returns 503 for the next N requests"); HTTP services consult
  :meth:`FaultPlan.next_http_error` before dispatching.

Injected faults surface as the *same* exception types real outages
produce (``ConnectionRefused``, ``ChannelClosed``), so the retry layer
in :mod:`repro.net.retry` handles both identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.rng import HmacDrbg
from repro.errors import ChannelClosed, ConnectionRefused, VnfSgxError
from repro.net.address import Address
from repro.net.clock import VirtualClock

#: Clock account all injected latency is charged to.
FAULT_ACCOUNT = "fault-injection"

KIND_REFUSAL = "connection-refused"
KIND_PARTITION = "partition"
KIND_CONNECT_DELAY = "connect-delay"
KIND_SEND_DELAY = "send-delay"
KIND_DROP = "connection-drop"
KIND_HTTP_ERROR = "http-error"


class _Schedule:
    """When a fault fires: a use-count budget and/or a sim-time window.

    ``count=None`` means unlimited uses while the window is open;
    ``for_seconds=None`` means no time bound.  A schedule with neither is
    permanent.
    """

    __slots__ = ("remaining", "_for_seconds", "_until")

    def __init__(self, count: Optional[int] = None,
                 for_seconds: Optional[float] = None) -> None:
        if count is not None and count <= 0:
            raise VnfSgxError("fault count must be positive")
        if for_seconds is not None and for_seconds <= 0:
            raise VnfSgxError("fault window must be positive")
        self.remaining = count
        self._for_seconds = for_seconds
        self._until: Optional[float] = None  # resolved on first check

    def fires(self, now: float) -> bool:
        """Consume one use if the schedule is active at ``now``."""
        if self._for_seconds is not None and self._until is None:
            # The window opens the first time the fault is consulted
            # after installation (deterministic on the virtual clock).
            self._until = now + self._for_seconds
        if self._until is not None and now >= self._until:
            return False
        if self.remaining is not None:
            if self.remaining <= 0:
                return False
            self.remaining -= 1
        return True

    @property
    def exhausted(self) -> bool:
        """True once the use-count budget is spent (windows never exhaust
        eagerly; they simply stop firing)."""
        return self.remaining is not None and self.remaining <= 0


class _ConnectionFaults:
    """Per-connection fault state captured at connect time."""

    __slots__ = ("drop_after", "sends_seen", "drop_probability")

    def __init__(self, drop_after: Optional[int],
                 drop_probability: float) -> None:
        self.drop_after = drop_after
        self.sends_seen = 0
        self.drop_probability = drop_probability


class FaultPlan:
    """A deterministic, installable schedule of injected faults.

    Args:
        seed: DRBG seed for probabilistic decisions (drop probabilities).
            Equal seeds + equal plans + equal traffic give identical
            failure traces.

    Faults are keyed by destination :class:`Address`; a plan matches a
    connection by the address it was opened to, and both directions of
    that connection are subject to its send faults.
    """

    def __init__(self, seed: bytes = b"fault-plan") -> None:
        self._rng = HmacDrbg(seed, personalization=b"repro.net.faults")
        self._refusals: Dict[Address, List[_Schedule]] = {}
        self._host_refusals: Dict[str, List[_Schedule]] = {}
        self._partitions: Dict[Tuple[str, str], List[_Schedule]] = {}
        self._connect_delays: Dict[Address, List[Tuple[float, _Schedule]]] = {}
        self._send_delays: Dict[Address, List[Tuple[float, _Schedule]]] = {}
        self._drops: Dict[Address, List[Tuple[int, _Schedule]]] = {}
        self._drop_probabilities: Dict[Address, Tuple[float, _Schedule]] = {}
        self._http_errors: Dict[Address, List[Tuple[int, _Schedule]]] = {}
        #: Count of injected faults by kind (introspection/testing).
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------- installing

    def refuse_connections(self, address: Address,
                           count: Optional[int] = None,
                           for_seconds: Optional[float] = None) -> "FaultPlan":
        """Refuse the next ``count`` connects to ``address`` and/or every
        connect within the next ``for_seconds`` of simulated time.

        With neither bound the address is permanently unreachable (until
        :meth:`clear`).
        """
        self._refusals.setdefault(address, []).append(
            _Schedule(count, for_seconds)
        )
        return self

    def crash_host(self, host: str, count: Optional[int] = None,
                   for_seconds: Optional[float] = None) -> "FaultPlan":
        """Crash an entire host: every connect to *any* port on ``host``
        is refused for the next ``count`` attempts and/or ``for_seconds``
        of simulated time (with neither bound, until :meth:`revive_host`
        or :meth:`clear`).

        This is the controller-failover primitive: a crashed controller
        replica refuses its replication, northbound and OpenFlow ports
        alike, so peers observe exactly what a dead process produces —
        :class:`~repro.errors.ConnectionRefused` on dial.
        """
        self._host_refusals.setdefault(host, []).append(
            _Schedule(count, for_seconds)
        )
        return self

    def revive_host(self, host: str) -> "FaultPlan":
        """Cancel :meth:`crash_host` schedules for ``host`` (the replica
        rejoins; fabric-level re-sync is the caller's business)."""
        self._host_refusals.pop(host, None)
        return self

    def partition(self, host_a: str, host_b: str,
                  count: Optional[int] = None,
                  for_seconds: Optional[float] = None) -> "FaultPlan":
        """Partition two hosts: connects *between* them (either
        direction) are refused while the schedule is active.  Both hosts
        stay reachable from everyone else — the asymmetric failure mode
        that distinguishes a network partition from a crash."""
        key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
        self._partitions.setdefault(key, []).append(
            _Schedule(count, for_seconds)
        )
        return self

    def heal_partition(self, host_a: str, host_b: str) -> "FaultPlan":
        """Cancel :meth:`partition` schedules between two hosts."""
        key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
        self._partitions.pop(key, None)
        return self

    def delay_connect(self, address: Address, seconds: float,
                      count: Optional[int] = None,
                      for_seconds: Optional[float] = None) -> "FaultPlan":
        """Charge ``seconds`` of extra latency to matching connects."""
        if seconds < 0:
            raise VnfSgxError("connect delay must be non-negative")
        self._connect_delays.setdefault(address, []).append(
            (seconds, _Schedule(count, for_seconds))
        )
        return self

    def delay_send(self, address: Address, seconds: float,
                   count: Optional[int] = None,
                   for_seconds: Optional[float] = None) -> "FaultPlan":
        """Charge ``seconds`` of extra latency to matching sends (either
        direction of connections opened to ``address``)."""
        if seconds < 0:
            raise VnfSgxError("send delay must be non-negative")
        self._send_delays.setdefault(address, []).append(
            (seconds, _Schedule(count, for_seconds))
        )
        return self

    def drop_after_sends(self, address: Address, sends: int,
                         connections: int = 1) -> "FaultPlan":
        """Tear down each of the next ``connections`` connections to
        ``address`` on its ``sends``-th send (a mid-stream drop: the
        send raises :class:`~repro.errors.ChannelClosed` and the peer
        observes EOF)."""
        if sends <= 0:
            raise VnfSgxError("drop threshold must be positive")
        self._drops.setdefault(address, []).append(
            (sends, _Schedule(connections))
        )
        return self

    def drop_send_probability(self, address: Address, probability: float,
                              count: Optional[int] = None,
                              for_seconds: Optional[float] = None
                              ) -> "FaultPlan":
        """Drop each matching connection at send time with ``probability``
        (drawn from the plan's DRBG, hence deterministic per seed)."""
        if not 0.0 <= probability <= 1.0:
            raise VnfSgxError("probability must be within [0, 1]")
        self._drop_probabilities[address] = (
            probability, _Schedule(count, for_seconds)
        )
        return self

    def http_error(self, address: Address, status: int = 503,
                   count: int = 1) -> "FaultPlan":
        """Make the HTTP service at ``address`` answer the next ``count``
        requests with ``status`` instead of dispatching them.

        Services opt in by consulting :meth:`next_http_error` (the IAS
        endpoint and the controller's northbound endpoints do).
        """
        if not 400 <= status <= 599:
            raise VnfSgxError(f"injected status {status} is not an error")
        self._http_errors.setdefault(address, []).append(
            (status, _Schedule(count))
        )
        return self

    def clear(self, address: Optional[Address] = None) -> None:
        """Drop every installed fault (or only those for ``address``).

        Host-level faults (:meth:`crash_host`, :meth:`partition`) are
        cleared only by the no-argument form — or individually via
        :meth:`revive_host` / :meth:`heal_partition`.
        """
        tables = (self._refusals, self._connect_delays, self._send_delays,
                  self._drops, self._drop_probabilities, self._http_errors)
        for table in tables:
            if address is None:
                table.clear()
            else:
                table.pop(address, None)
        if address is None:
            self._host_refusals.clear()
            self._partitions.clear()

    # ------------------------------------------------------------------ hooks
    # Called by Network / HTTP services; not by user code.

    def _record(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def on_connect(self, destination: Address,
                   clock: VirtualClock,
                   source_host: Optional[str] = None) -> "_ConnectionFaults":
        """Consulted by :meth:`Network.connect` before the rendezvous.

        Raises :class:`~repro.errors.ConnectionRefused` for scheduled
        refusals (port-, host- or partition-level), charges scheduled
        connect delays, and returns the per-connection fault state
        (mid-stream drop budget).  ``source_host`` is required only for
        partition matching; callers that omit it skip partition checks.
        """
        now = clock.now()
        for schedule in self._host_refusals.get(destination.host, []):
            if schedule.fires(now):
                self._record(KIND_REFUSAL)
                raise ConnectionRefused(
                    f"injected fault: host {destination.host} is down"
                )
        if source_host is not None:
            pair = ((source_host, destination.host)
                    if source_host <= destination.host
                    else (destination.host, source_host))
            for schedule in self._partitions.get(pair, []):
                if schedule.fires(now):
                    self._record(KIND_PARTITION)
                    raise ConnectionRefused(
                        f"injected fault: {source_host} and "
                        f"{destination.host} are partitioned"
                    )
        for schedule in self._refusals.get(destination, []):
            if schedule.fires(now):
                self._record(KIND_REFUSAL)
                raise ConnectionRefused(
                    f"injected fault: connection to {destination} refused"
                )
        for seconds, schedule in self._connect_delays.get(destination, []):
            if schedule.fires(now):
                self._record(KIND_CONNECT_DELAY)
                clock.advance(seconds, FAULT_ACCOUNT)
        drop_after: Optional[int] = None
        for sends, schedule in self._drops.get(destination, []):
            if schedule.fires(now):
                drop_after = sends
                break
        drop_probability = 0.0
        probability_entry = self._drop_probabilities.get(destination)
        if probability_entry is not None:
            drop_probability = probability_entry[0]
        return _ConnectionFaults(drop_after, drop_probability)

    def on_send(self, destination: Address, state: "_ConnectionFaults",
                clock: VirtualClock) -> bool:
        """Consulted once per send on a faulted connection.

        Charges scheduled send delays; returns ``True`` when the
        connection must be dropped *instead of* delivering the payload.
        """
        now = clock.now()
        for seconds, schedule in self._send_delays.get(destination, []):
            if schedule.fires(now):
                self._record(KIND_SEND_DELAY)
                clock.advance(seconds, FAULT_ACCOUNT)
        state.sends_seen += 1
        if state.drop_after is not None and state.sends_seen >= state.drop_after:
            state.drop_after = None  # one drop per budget entry
            self._record(KIND_DROP)
            return True
        if state.drop_probability > 0.0:
            entry = self._drop_probabilities.get(destination)
            if entry is not None and entry[1].fires(now):
                draw = self._rng.random_int(1 << 30) / float(1 << 30)
                if draw < state.drop_probability:
                    self._record(KIND_DROP)
                    return True
        return False

    def next_http_error(self, address: Address) -> Optional[int]:
        """The status an HTTP service at ``address`` must answer the
        current request with, or ``None`` to dispatch normally."""
        entries = self._http_errors.get(address)
        if not entries:
            return None
        status, schedule = entries[0]
        if not schedule.fires(0.0):
            if schedule.exhausted:
                # Burst drained: advance to the next scheduled burst.
                entries.pop(0)
                return self.next_http_error(address)
            return None
        self._record(KIND_HTTP_ERROR)
        return status

    # -------------------------------------------------------------- teardown

    @staticmethod
    def tear_down(channel) -> None:
        """Drop a live connection: both endpoints close, the in-flight
        payload is lost, and the interrupted send raises."""
        peer = channel.peer
        channel.close()
        if peer is not None:
            peer.close()
        raise ChannelClosed(
            f"injected fault: connection dropped mid-stream ({channel.label})"
        )


__all__ = [
    "FAULT_ACCOUNT",
    "FaultPlan",
    "KIND_CONNECT_DELAY",
    "KIND_DROP",
    "KIND_HTTP_ERROR",
    "KIND_PARTITION",
    "KIND_REFUSAL",
    "KIND_SEND_DELAY",
]
