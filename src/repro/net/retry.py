"""Retry, timeout and backoff for the enrollment pipeline.

Every network client in the pipeline (``IasClient``, ``HostAgentClient``,
``VnfRestClient``) and the :class:`~repro.core.enrollment.EnrollmentSession`
itself can be configured with a :class:`RetryPolicy`; :func:`retry_call`
is the shared executor.  Semantics:

- **transparent**: a policy of :data:`NO_RETRY` (the default everywhere)
  reproduces the pre-retry behaviour bit-for-bit — one attempt, no clock
  charges, the original exception propagates.
- **deterministic**: backoff jitter is drawn from a caller-supplied
  HMAC-DRBG and the sleep is charged to the virtual clock under the
  ``"retry-backoff"`` account, so equal seeds give identical retry
  traces.
- **typed**: only exceptions in the ``retryable`` set are retried;
  everything else (appraisal failures, protocol violations, application
  errors) propagates immediately.  On give-up the *original* exception
  is re-raised, so callers' exception contracts are unchanged.
- **observable**: when a :class:`repro.obs.Telemetry` is attached,
  re-attempts and give-ups land in
  ``vnf_sgx_retry_attempts_total{operation=...}`` /
  ``vnf_sgx_retry_giveups_total{operation=...}``, backoff sleeps in
  ``vnf_sgx_retry_backoff_seconds``, and each retry adds an event to the
  innermost open span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import IasUnavailable, NetError, VnfSgxError
from repro.net.clock import VirtualClock

T = TypeVar("T")

#: Clock account charged by backoff sleeps.
BACKOFF_ACCOUNT = "retry-backoff"

#: The default transient-failure set: anything the simulated network
#: raises (refusals, drops, lockstep loss) plus an IAS 5xx verdict.
TRANSIENT_ERRORS: Tuple[Type[BaseException], ...] = (NetError, IasUnavailable)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up.

    Attributes:
        max_attempts: total attempts (1 = no retries).
        base_backoff: simulated seconds slept before the first re-attempt.
        multiplier: exponential growth factor between re-attempts.
        max_backoff: backoff ceiling in simulated seconds.
        jitter: fractional jitter; each sleep is scaled by a factor drawn
            uniformly from ``[1 - jitter, 1 + jitter)`` using the
            caller's DRBG (0 disables jitter).
        attempt_timeout: per-attempt budget in simulated seconds; an
            attempt that fails after exceeding it is classified as a
            timeout (the simulation is synchronous, so the budget cannot
            interrupt an attempt — it classifies and gates retries).
        deadline: total simulated-seconds budget across all attempts;
            once exceeded, the next failure gives up regardless of
            ``max_attempts``.
    """

    max_attempts: int = 4
    base_backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.1
    attempt_timeout: Optional[float] = None
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise VnfSgxError("max_attempts must be at least 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise VnfSgxError("backoff must be non-negative")
        if self.multiplier < 1.0:
            raise VnfSgxError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise VnfSgxError("jitter must be within [0, 1)")

    def backoff_before(self, attempt: int, rng=None) -> float:
        """Simulated seconds to sleep before attempt ``attempt`` (2-based).

        Exponential in the retry index, capped at :attr:`max_backoff`,
        with deterministic multiplicative jitter when ``rng`` is given.
        """
        if attempt < 2:
            return 0.0
        raw = min(self.base_backoff * self.multiplier ** (attempt - 2),
                  self.max_backoff)
        if rng is not None and self.jitter > 0.0 and raw > 0.0:
            fraction = rng.random_int(1 << 20) / float(1 << 20)
            raw *= 1.0 + self.jitter * (2.0 * fraction - 1.0)
        return raw


#: Exactly one attempt — the drop-in equivalent of "no retry layer".
NO_RETRY = RetryPolicy(max_attempts=1, base_backoff=0.0, jitter=0.0)


def _span_event(telemetry, name: str, **attributes) -> None:
    """Attach an event to the innermost open span, if tracing is live."""
    if telemetry is None:
        return
    span = telemetry.tracer.current_span()
    if span is not None:
        span.add_event(name, timestamp=telemetry.now(), **attributes)


def retry_call(fn: Callable[[], T], *, policy: Optional[RetryPolicy],
               clock: Optional[VirtualClock], operation: str,
               rng=None,
               retryable: Tuple[Type[BaseException], ...] = TRANSIENT_ERRORS,
               telemetry=None,
               on_retry: Optional[Callable[[int, BaseException], None]] = None
               ) -> T:
    """Run ``fn`` under ``policy``; the shared retry executor.

    Args:
        fn: zero-argument attempt (must be safe to re-run; every client
            re-establishes its connection inside the attempt).
        policy: the retry policy; ``None`` means :data:`NO_RETRY`.
        clock: virtual clock for backoff charging and timeout/deadline
            accounting; may be ``None`` only when the policy never
            sleeps or measures (i.e. ``NO_RETRY``).
        operation: label for metrics and span events.
        rng: DRBG for jitter (optional; no jitter without it).
        retryable: exception types eligible for retry.
        telemetry: optional :class:`repro.obs.Telemetry`.
        on_retry: test/diagnostic hook called as ``on_retry(attempt, exc)``
            before each backoff sleep.

    Raises:
        The original exception from the final attempt, unchanged.
    """
    if policy is None:
        policy = NO_RETRY
    if policy.max_attempts == 1 and policy.deadline is None:
        return fn()  # fast path: zero overhead, zero clock access
    if clock is None:
        raise VnfSgxError(
            f"retry for {operation!r} needs a clock to charge backoff"
        )
    started = clock.now()
    attempt = 0
    while True:
        attempt += 1
        attempt_start = clock.now()
        try:
            return fn()
        except retryable as exc:
            elapsed = clock.now() - attempt_start
            timed_out = (policy.attempt_timeout is not None
                         and elapsed > policy.attempt_timeout)
            total = clock.now() - started
            over_deadline = (policy.deadline is not None
                             and total >= policy.deadline)
            if attempt >= policy.max_attempts or over_deadline:
                if telemetry is not None:
                    telemetry.retry_giveups.labels(operation=operation).inc()
                _span_event(
                    telemetry, "retry-giveup", operation=operation,
                    attempts=attempt,
                    reason=("deadline" if over_deadline else "attempts"),
                    error=f"{type(exc).__name__}: {exc}",
                )
                raise
            backoff = policy.backoff_before(attempt + 1, rng)
            if telemetry is not None:
                telemetry.retry_attempts.labels(operation=operation).inc()
                telemetry.retry_backoff_seconds.labels().observe(backoff)
            _span_event(
                telemetry, "retry", operation=operation, attempt=attempt,
                backoff_seconds=backoff,
                error=f"{type(exc).__name__}: {exc}",
                timed_out=timed_out,
            )
            if on_retry is not None:
                on_retry(attempt, exc)
            if backoff > 0.0:
                clock.advance(backoff, BACKOFF_ACCOUNT)


class RetryingMixin:
    """Shared plumbing for clients that support ``configure_retries``.

    Subclasses call :meth:`_retrying` around one attempt-closure; the
    mixin holds the policy, the jitter DRBG and the telemetry reference
    (all ``None`` by default, which reproduces pre-retry behaviour).
    """

    _retry_policy: Optional[RetryPolicy] = None
    _retry_rng = None
    _retry_telemetry = None

    def configure_retries(self, policy: Optional[RetryPolicy],
                          rng=None) -> None:
        """Install (or clear, with ``None``) a retry policy."""
        self._retry_policy = policy
        self._retry_rng = rng

    def instrument(self, telemetry) -> None:
        """Attach a :class:`repro.obs.Telemetry` for retry counters and
        span events (``None`` detaches)."""
        self._retry_telemetry = telemetry

    def _retrying(self, fn: Callable[[], T], *, operation: str,
                  clock: Optional[VirtualClock],
                  retryable: Tuple[Type[BaseException], ...] = TRANSIENT_ERRORS
                  ) -> T:
        return retry_call(
            fn, policy=self._retry_policy, clock=clock, operation=operation,
            rng=self._retry_rng, retryable=retryable,
            telemetry=self._retry_telemetry,
        )


__all__ = [
    "BACKOFF_ACCOUNT",
    "NO_RETRY",
    "RetryPolicy",
    "RetryingMixin",
    "TRANSIENT_ERRORS",
    "retry_call",
]
