"""The simulated network fabric.

A :class:`Network` owns the virtual clock, a listener table, and a latency
model.  ``connect`` performs a rendezvous with the destination's acceptor
and returns the client-side channel; every byte sent afterwards charges
latency + serialization time to the clock under the ``"network"`` account.

A :class:`~repro.net.faults.FaultPlan` installed via
:meth:`Network.install_faults` intercepts connects and sends to inject
refusals, latency spikes and mid-stream drops deterministically; see
``docs/FAULTS.md``.

The fabric is **thread-safe**: listener registration, link-profile
lookups and the connection counter are guarded by one internal lock, so
concurrent fleet sessions (:mod:`repro.core.fleet`) can connect without
torn state.  Acceptors still run inline in the connecting thread, and an
individual :class:`~repro.net.channel.Channel` pair remains a lockstep
request/response rail owned by the thread (or pooled client) using it —
see ``docs/CONCURRENCY.md`` for the ownership rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.analysis.sanitizer import make_rlock
from repro.errors import AddressError, ConnectionRefused
from repro.net.address import Address
from repro.net.channel import Channel
from repro.net.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.net.faults import FaultPlan

Acceptor = Callable[[Channel], None]


@dataclass(frozen=True)
class LinkProfile:
    """Latency/bandwidth parameters for a host pair.

    Attributes:
        latency: one-way propagation delay in seconds.
        bytes_per_second: serialization rate; 0 disables the per-byte cost.
    """

    latency: float = 0.0005
    bytes_per_second: float = 1.25e9  # ~10 Gbit/s

    def transfer_time(self, n_bytes: int) -> float:
        """Simulated one-way time to move ``n_bytes``."""
        serialization = (
            n_bytes / self.bytes_per_second if self.bytes_per_second else 0.0
        )
        return self.latency + serialization


LOOPBACK = LinkProfile(latency=0.00002, bytes_per_second=5e9)
DATACENTER = LinkProfile(latency=0.0005, bytes_per_second=1.25e9)
WAN = LinkProfile(latency=0.02, bytes_per_second=1.25e8)


class Network:
    """The fabric connecting hosts in a deployment.

    Args:
        clock: shared virtual clock (created if not supplied).
        default_profile: link profile for host pairs without an override.
    """

    def __init__(self, clock: Optional[VirtualClock] = None,
                 default_profile: LinkProfile = DATACENTER) -> None:
        self.clock = clock or VirtualClock()
        self._default_profile = default_profile
        self._listeners: Dict[Address, Acceptor] = {}
        self._profiles: Dict[Tuple[str, str], LinkProfile] = {}
        self._connection_count = 0
        self._message_count = 0
        self._messages_by_host: Dict[str, int] = {}
        self._faults: Optional["FaultPlan"] = None
        self._lock = make_rlock("simnet")

    # --------------------------------------------------------------- faults

    @property
    def faults(self) -> Optional["FaultPlan"]:
        """The installed fault plan, or ``None``."""
        return self._faults

    def install_faults(self, plan: Optional["FaultPlan"]) -> Optional["FaultPlan"]:
        """Install a :class:`~repro.net.faults.FaultPlan` (or clear it
        with ``None``).  Returns the plan for chaining."""
        self._faults = plan
        return plan

    # ------------------------------------------------------------- topology

    def set_link_profile(self, host_a: str, host_b: str,
                         profile: LinkProfile) -> None:
        """Override the link profile between two hosts (order-insensitive)."""
        with self._lock:
            self._profiles[(host_a, host_b)] = profile
            self._profiles[(host_b, host_a)] = profile

    def profile_between(self, host_a: str, host_b: str) -> LinkProfile:
        """Effective link profile between two hosts."""
        with self._lock:
            if host_a == host_b:
                return self._profiles.get((host_a, host_b), LOOPBACK)
            return self._profiles.get((host_a, host_b), self._default_profile)

    # ------------------------------------------------------------ listeners

    def listen(self, address: Address, acceptor: Acceptor) -> None:
        """Register an acceptor for inbound connections to ``address``."""
        with self._lock:
            if address in self._listeners:
                raise AddressError(f"{address} is already listening")
            self._listeners[address] = acceptor

    def stop_listening(self, address: Address) -> None:
        """Remove a listener."""
        with self._lock:
            self._listeners.pop(address, None)

    def is_listening(self, address: Address) -> bool:
        """True if something accepts connections at ``address``."""
        with self._lock:
            return address in self._listeners

    # ----------------------------------------------------------- connecting

    def connect(self, source_host: str, destination: Address) -> Channel:
        """Open a connection; returns the client-side channel.

        The destination's acceptor runs inline (it typically registers an
        ``on_receive`` handler on the server-side channel).
        """
        with self._lock:
            acceptor = self._listeners.get(destination)
        if acceptor is None:
            raise ConnectionRefused(f"nothing listening at {destination}")
        profile = self.profile_between(source_host, destination.host)
        fault_state = None
        if self._faults is not None:
            # May raise ConnectionRefused (injected) or charge extra
            # connect latency; returns this connection's fault budget.
            fault_state = self._faults.on_connect(destination, self.clock,
                                                  source_host)
        with self._lock:
            self._connection_count += 1
            conn_id = self._connection_count
        # Connection setup costs one round trip (SYN + SYN/ACK equivalent).
        self.clock.advance(2 * profile.latency, "network")

        client_side: Channel
        server_side: Channel

        def make_deliver(direction: str) -> Callable[[Channel, bytes], None]:
            def deliver(sender: Channel, data: bytes) -> None:
                if fault_state is not None and self._faults is not None:
                    from repro.net.faults import FaultPlan

                    if self._faults.on_send(destination, fault_state,
                                            self.clock):
                        # Mid-stream drop: the payload is lost, both
                        # endpoints close, and the send raises.
                        FaultPlan.tear_down(sender)
                self.clock.advance(profile.transfer_time(len(data)), "network")
                with self._lock:
                    self._message_count += 1
                    self._messages_by_host[destination.host] = (
                        self._messages_by_host.get(destination.host, 0) + 1
                    )
                receiver = sender.peer
                if receiver is not None:
                    receiver._enqueue(data)
            return deliver

        def notify_close(closing: Channel) -> None:
            if closing.peer is not None:
                closing.peer._peer_did_close()

        client_side = Channel(
            f"conn{conn_id}:{source_host}->{destination}",
            make_deliver("c2s"), notify_close,
        )
        server_side = Channel(
            f"conn{conn_id}:{destination}<-{source_host}",
            make_deliver("s2c"), notify_close,
        )
        client_side.peer = server_side
        server_side.peer = client_side
        acceptor(server_side)
        return client_side

    @property
    def connections_opened(self) -> int:
        """Total connections opened since construction."""
        return self._connection_count

    @property
    def messages_sent(self) -> int:
        """Total channel sends delivered since construction.

        Each send is one one-way message on the fabric, so the delta
        across an operation counts its protocol round trips — the metric
        experiment E14 uses to compare enrollment paths.
        """
        with self._lock:
            return self._message_count

    def messages_to(self, host: str) -> int:
        """Messages carried on connections dialed to ``host``.

        Both directions of a connection are attributed to the host the
        dialer connected to, so the delta across an operation splits its
        round trips by service: experiment E14 separates enrollment
        machinery (agents, Verification Manager, IAS) from the
        controller session both enrollment paths establish identically.
        """
        with self._lock:
            return self._messages_by_host.get(host, 0)
