"""A minimal HTTP/1.1-style REST layer.

The paper's VNFs talk to the Floodlight controller over its REST API in one
of three security modes (plain HTTP, HTTPS, trusted HTTPS).  This module
implements the message format and a small routing server; it is transport
agnostic — the same bytes flow over a bare :class:`~repro.net.channel.Channel`
(HTTP mode) or a TLS connection (HTTPS modes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RestError

_MAX_HEADER_BYTES = 16384
_MAX_BODY_BYTES = 1 << 24

STATUS_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Transient statuses a client may retry under a
#: :class:`repro.net.retry.RetryPolicy`.
TRANSIENT_STATUSES = frozenset({429, 502, 503, 504})


def _normalized_headers(headers: Dict[str, str], body: bytes) -> Dict[str, str]:
    """Lowercase header names at encode time.

    The parser lowercases names on the way in; encoding must do the same
    or a caller passing ``{"Content-Length": "5"}`` would emit *two*
    conflicting content-length headers on the wire (the caller's and the
    ``setdefault`` one).  Later duplicates (after normalization) win,
    matching ``dict`` update semantics — except ``content-length``, which
    the encoder always computes from the actual body so the framing can
    never lie about the payload it carries.
    """
    normalized: Dict[str, str] = {}
    for name, value in headers.items():
        normalized[name.strip().lower()] = str(value).strip()
    normalized["content-length"] = str(len(body))
    return normalized


@dataclass
class HttpRequest:
    """An HTTP request message."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        """Serialize to wire bytes (header names normalized to lowercase)."""
        headers = _normalized_headers(self.headers, self.body)
        lines = [f"{self.method} {self.path} HTTP/1.1"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + self.body


@dataclass
class HttpResponse:
    """An HTTP response message."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        """Serialize to wire bytes (header names normalized to lowercase)."""
        reason = STATUS_REASONS.get(self.status, "Unknown")
        headers = _normalized_headers(self.headers, self.body)
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + self.body


def _split_message(data: bytes) -> Optional[Tuple[str, Dict[str, str], bytes, int]]:
    """Try to carve one complete HTTP message out of ``data``.

    Returns ``(start_line, headers, body, consumed)`` or ``None`` if more
    bytes are needed.
    """
    end = data.find(b"\r\n\r\n")
    if end < 0:
        if len(data) > _MAX_HEADER_BYTES:
            raise RestError("header section exceeds limit")
        return None
    head = data[:end].decode("ascii", errors="replace")
    lines = head.split("\r\n")
    start_line = lines[0]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if not sep:
            raise RestError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError as exc:
        raise RestError("malformed content-length") from exc
    if length < 0 or length > _MAX_BODY_BYTES:
        raise RestError(f"content-length {length} out of range")
    body_start = end + 4
    if len(data) < body_start + length:
        return None
    body = data[body_start:body_start + length]
    return start_line, headers, body, body_start + length


class HttpParser:
    """Incremental parser that turns a byte stream into HTTP messages."""

    def __init__(self, is_server_side: bool) -> None:
        self._buffer = bytearray()
        self._is_server = is_server_side

    def feed(self, data: bytes) -> List[object]:
        """Absorb bytes; return complete messages parsed so far."""
        self._buffer += data
        messages: List[object] = []
        while True:
            carved = _split_message(bytes(self._buffer))
            if carved is None:
                return messages
            start_line, headers, body, consumed = carved
            del self._buffer[:consumed]
            messages.append(self._build(start_line, headers, body))

    def _build(self, start_line: str, headers: Dict[str, str], body: bytes):
        parts = start_line.split(" ")
        if self._is_server:
            if len(parts) != 3 or parts[2] != "HTTP/1.1":
                raise RestError(f"malformed request line {start_line!r}")
            return HttpRequest(parts[0], parts[1], headers, body)
        if len(parts) < 2 or parts[0] != "HTTP/1.1":
            raise RestError(f"malformed status line {start_line!r}")
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise RestError(f"malformed status {parts[1]!r}") from exc
        return HttpResponse(status, headers, body)


Handler = Callable[[HttpRequest], HttpResponse]


class RestServer:
    """Routes requests to handlers by exact ``(method, path)`` match.

    Handlers receive the :class:`HttpRequest` and return an
    :class:`HttpResponse`; exceptions surface as 500s so one bad request
    cannot take the controller down.
    """

    def __init__(self) -> None:
        self._routes: Dict[Tuple[str, str], Handler] = {}

    def route(self, method: str, path: str, handler: Handler) -> None:
        """Register a handler."""
        self._routes[(method.upper(), path)] = handler

    def dispatch(self, request: HttpRequest) -> HttpResponse:
        """Find and invoke the handler for ``request``."""
        handler = self._routes.get((request.method.upper(), request.path))
        if handler is None:
            if any(path == request.path for _, path in self._routes):
                return HttpResponse(405, body=b"method not allowed")
            return HttpResponse(404, body=b"not found")
        try:
            return handler(request)
        except RestError as exc:
            return HttpResponse(400, body=str(exc).encode())
        except Exception as exc:  # noqa: BLE001 — the server must survive
            return HttpResponse(500, body=f"{type(exc).__name__}: {exc}".encode())

    def routes(self) -> List[Tuple[str, str]]:
        """Registered ``(method, path)`` pairs."""
        return list(self._routes.keys())
