"""Length-prefixed message framing over byte-stream channels.

Frames are ``length (4 bytes, big-endian) || payload``.  Both the secure
provisioning protocol and the attestation protocol exchange framed messages;
TLS uses its own record format instead.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import FramingError
from repro.net.channel import Channel

MAX_FRAME = 1 << 24  # 16 MiB


def send_frame(channel: Channel, payload: bytes) -> None:
    """Send one framed message."""
    if len(payload) > MAX_FRAME:
        raise FramingError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME}")
    channel.send(struct.pack(">I", len(payload)) + payload)


def recv_frame(channel: Channel) -> bytes:
    """Receive one framed message (blocking-style)."""
    header = channel.recv_exactly(4)
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME:
        raise FramingError(f"declared frame length {length} exceeds {MAX_FRAME}")
    return channel.recv_exactly(length)


def try_recv_frame(channel: Channel) -> Optional[bytes]:
    """Receive one framed message if fully buffered, else ``None``.

    Event-driven endpoints call this from their receive handlers, which may
    fire with partial frames.
    """
    if channel.bytes_available < 4:
        return None
    header = bytes(channel._rx[:4])  # peek without consuming
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME:
        raise FramingError(f"declared frame length {length} exceeds {MAX_FRAME}")
    if channel.bytes_available < 4 + length:
        return None
    channel.recv_exactly(4)
    return channel.recv_exactly(length)
