"""A simulated filesystem for container hosts.

Holds the files IMA measures: the OS's binaries, the container runtime,
and the layers of deployed container images.  The mutation API is
deliberately unrestricted — modelling a root-level adversary *is* the
threat model of the paper's future-work section.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import ImaError


class SimulatedFilesystem:
    """Path -> content store with mtime-style generation counters."""

    def __init__(self) -> None:
        self._files: Dict[str, bytes] = {}
        self._generation: Dict[str, int] = {}

    def write_file(self, path: str, content: bytes) -> None:
        """Create or overwrite a file."""
        if not path.startswith("/"):
            raise ImaError(f"paths must be absolute: {path!r}")
        self._files[path] = bytes(content)
        self._generation[path] = self._generation.get(path, 0) + 1

    def read_file(self, path: str) -> bytes:
        """Read a file's content."""
        try:
            return self._files[path]
        except KeyError as exc:
            raise ImaError(f"no such file: {path}") from exc

    def delete_file(self, path: str) -> None:
        """Remove a file."""
        if path not in self._files:
            raise ImaError(f"no such file: {path}")
        del self._files[path]
        self._generation.pop(path, None)

    def exists(self, path: str) -> bool:
        """True if ``path`` exists."""
        return path in self._files

    def generation(self, path: str) -> int:
        """Write-generation counter (0 for non-existent files)."""
        return self._generation.get(path, 0)

    def list_files(self, prefix: str = "/") -> List[str]:
        """All paths under ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def walk(self) -> Iterator[str]:
        """Iterate all paths in sorted order."""
        return iter(self.list_files())

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, path: str) -> bool:
        return path in self._files
