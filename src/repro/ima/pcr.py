"""A software PCR: the extend-only accumulator IMA aggregates into."""

from __future__ import annotations

from repro.crypto.sha256 import sha256

PCR_SIZE = 32
INITIAL_VALUE = b"\x00" * PCR_SIZE


class Pcr:
    """One platform configuration register (SHA-256 bank)."""

    def __init__(self) -> None:
        self._value = INITIAL_VALUE
        self._extends = 0

    def extend(self, digest: bytes) -> bytes:
        """``PCR := SHA-256(PCR || digest)``; returns the new value."""
        if len(digest) != PCR_SIZE:
            raise ValueError(f"PCR extend requires a {PCR_SIZE}-byte digest")
        self._value = sha256(self._value + digest)
        self._extends += 1
        return self._value

    def read(self) -> bytes:
        """Current register value."""
        return self._value

    @property
    def extend_count(self) -> int:
        """Number of extends since reset."""
        return self._extends

    def reset(self) -> None:
        """Reboot semantics: back to the initial value."""
        self._value = INITIAL_VALUE
        self._extends = 0
