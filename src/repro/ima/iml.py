"""The integrity measurement list (IML) and its ``ima-ng`` entries.

Each measured file contributes one entry; the entry's template hash extends
the PCR-10 aggregate.  The list itself lives in kernel memory, i.e. *host
memory* — exactly why the paper's future work wants it rooted in a TPM.
The mutation methods (:meth:`MeasurementList.replace_entry`,
:meth:`MeasurementList.remove_entry`, :meth:`MeasurementList.rewrite`)
model that adversary and are exercised by experiments E2 and E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.crypto.sha256 import sha256
from repro.errors import ImaError
from repro.ima.pcr import Pcr
from repro.pki import der

TEMPLATE_IMA_NG = "ima-ng"
BOOT_AGGREGATE_PATH = "boot_aggregate"

# The kernel records a measurement *violation* (ToMToU / open-writers: the
# file changed while it was being measured) with an all-zero digest.
VIOLATION_HASH = b"\x00" * 32


@dataclass(frozen=True)
class ImaEntry:
    """One ``ima-ng`` measurement: file hash + path, in PCR 10."""

    pcr_index: int
    file_hash: bytes
    path: str
    template: str = TEMPLATE_IMA_NG

    def template_hash(self) -> bytes:
        """The digest extended into the PCR for this entry."""
        return sha256(
            self.template.encode("utf-8")
            + b"\x00"
            + self.file_hash
            + self.path.encode("utf-8")
        )

    def to_list(self) -> list:
        """Canonical list form for serialization."""
        return [self.pcr_index, self.file_hash, self.path, self.template]

    @classmethod
    def from_list(cls, items: list) -> "ImaEntry":
        """Rebuild from the canonical list form."""
        if len(items) != 4:
            raise ImaError("malformed IML entry")
        return cls(pcr_index=items[0], file_hash=items[1], path=items[2],
                   template=items[3])


class MeasurementList:
    """The ordered IML plus its live PCR aggregate."""

    def __init__(self) -> None:
        self._entries: List[ImaEntry] = []
        self._pcr = Pcr()

    # ----------------------------------------------------------- honest API

    def append(self, entry: ImaEntry) -> None:
        """Append a measurement and extend the aggregate (kernel path)."""
        self._entries.append(entry)
        self._pcr.extend(entry.template_hash())

    def boot_aggregate(self, boot_digest: bytes) -> ImaEntry:
        """Create and append the canonical first entry."""
        if self._entries:
            raise ImaError("boot_aggregate must be the first IML entry")
        entry = ImaEntry(pcr_index=10, file_hash=boot_digest,
                         path=BOOT_AGGREGATE_PATH)
        self.append(entry)
        return entry

    @property
    def entries(self) -> List[ImaEntry]:
        """The entries, in measurement order."""
        return list(self._entries)

    def aggregate(self) -> bytes:
        """The live PCR-10 value."""
        return self._pcr.read()

    @staticmethod
    def compute_aggregate(entries: List[ImaEntry]) -> bytes:
        """Recompute the aggregate an entry list *should* produce.

        Appraisal uses this to check internal consistency of a shipped
        list, and the TPM comparison uses it against the quoted PCR.
        """
        pcr = Pcr()
        for entry in entries:
            pcr.extend(entry.template_hash())
        return pcr.read()

    def find(self, path: str) -> Optional[ImaEntry]:
        """Most recent entry for ``path``."""
        for entry in reversed(self._entries):
            if entry.path == path:
                return entry
        return None

    # -------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Serialize the full list (what travels inside the quote)."""
        return der.encode([entry.to_list() for entry in self._entries])

    @classmethod
    def from_bytes(cls, data: bytes) -> "MeasurementList":
        """Parse a serialized list, rebuilding the aggregate honestly."""
        iml = cls()
        for raw in der.decode(data):
            iml.append(ImaEntry.from_list(raw))
        return iml

    # ------------------------------------------------- adversarial mutation

    def replace_entry(self, path: str, new_file_hash: bytes) -> None:
        """Root adversary: rewrite the recorded hash for ``path`` in place.

        The PCR aggregate is *not* recomputed — hardware PCRs cannot be
        rewound — so the list becomes internally inconsistent... unless the
        adversary also calls :meth:`rewrite`, which is exactly the attack
        a TPM defeats.
        """
        for index, entry in enumerate(self._entries):
            if entry.path == path:
                self._entries[index] = ImaEntry(
                    pcr_index=entry.pcr_index,
                    file_hash=new_file_hash,
                    path=entry.path,
                    template=entry.template,
                )
                return
        raise ImaError(f"no IML entry for {path}")

    def remove_entry(self, path: str) -> None:
        """Root adversary: delete a measurement from the list."""
        remaining = [e for e in self._entries if e.path != path]
        if len(remaining) == len(self._entries):
            raise ImaError(f"no IML entry for {path}")
        self._entries = remaining

    def rewrite(self) -> None:
        """Root adversary: recompute the *software* aggregate so the list
        looks internally consistent again.  Only an authenticated hardware
        root of trust (the TPM) reveals this happened."""
        self._pcr.reset()
        for entry in self._entries:
            self._pcr.extend(entry.template_hash())

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ImaEntry]:
        return iter(self._entries)
