"""A model of the Linux Integrity Measurement Architecture (IMA).

The paper's integrity attestation enclave ships the host's *integrity
measurement list* (IML) to the Verification Manager inside a quote.  This
subpackage produces that list the way the kernel does: an administrator
policy selects which files are measured
(:mod:`repro.ima.policy`), a measurement agent hashes them on access
(:mod:`repro.ima.measure`), and each measurement appends an ``ima-ng``
template entry to the IML while extending a PCR-10-style aggregate
(:mod:`repro.ima.iml`, :mod:`repro.ima.pcr`).

The aggregate can optionally be anchored in a :mod:`repro.tpm` device —
the paper's future-work item — which is what makes log rewriting by a
root-level adversary detectable (experiment E7).
"""

from repro.ima.filesystem import SimulatedFilesystem
from repro.ima.policy import ImaPolicy, PolicyRule
from repro.ima.iml import ImaEntry, MeasurementList
from repro.ima.pcr import Pcr
from repro.ima.measure import MeasurementAgent

__all__ = [
    "SimulatedFilesystem",
    "ImaPolicy",
    "PolicyRule",
    "ImaEntry",
    "MeasurementList",
    "Pcr",
    "MeasurementAgent",
]
