"""The measurement agent: the kernel-side half of IMA.

Measures policy-selected files into the IML (and, when a TPM is attached,
into the hardware PCR as well).  Files are re-measured when their content
generation changes, mirroring the kernel's measure-on-open semantics
without measuring unchanged files twice.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.crypto.sha256 import sha256
from repro.ima.filesystem import SimulatedFilesystem
from repro.ima.iml import ImaEntry, MeasurementList
from repro.ima.policy import ImaPolicy

IMA_PCR_INDEX = 10


class MeasurementAgent:
    """Applies an :class:`ImaPolicy` to a filesystem, producing the IML.

    Args:
        filesystem: the host filesystem to measure.
        policy: measurement policy.
        tpm: optional :class:`repro.tpm.TpmDevice`; when present every
            template hash is also extended into the hardware PCR 10 —
            the paper's future-work configuration.
    """

    def __init__(self, filesystem: SimulatedFilesystem, policy: ImaPolicy,
                 tpm=None) -> None:
        self.filesystem = filesystem
        self.policy = policy
        self.iml = MeasurementList()
        self._tpm = tpm
        self._measured_generation: Dict[str, int] = {}
        boot_digest = sha256(b"boot-aggregate|kernel+initrd")
        entry = self.iml.boot_aggregate(boot_digest)
        self._extend_tpm(entry)

    def _extend_tpm(self, entry: ImaEntry) -> None:
        if self._tpm is not None:
            self._tpm.extend(IMA_PCR_INDEX, entry.template_hash())

    # ----------------------------------------------------------- measuring

    def measure_file(self, path: str) -> Optional[ImaEntry]:
        """Measure one file if the policy selects it and it changed.

        Returns the new entry, or ``None`` when nothing was recorded.
        """
        if not self.policy.should_measure(path):
            return None
        generation = self.filesystem.generation(path)
        if self._measured_generation.get(path) == generation:
            return None  # unchanged since last measurement
        content = self.filesystem.read_file(path)
        entry = ImaEntry(
            pcr_index=IMA_PCR_INDEX,
            file_hash=sha256(content),
            path=path,
        )
        self.iml.append(entry)
        self._extend_tpm(entry)
        self._measured_generation[path] = generation
        return entry

    def measure_all(self) -> List[ImaEntry]:
        """Sweep the filesystem (boot-time measurement pass)."""
        appended = []
        for path in self.filesystem.walk():
            entry = self.measure_file(path)
            if entry is not None:
                appended.append(entry)
        return appended

    def on_file_accessed(self, path: str) -> Optional[ImaEntry]:
        """Hook invoked by the host when a file is opened/executed."""
        return self.measure_file(path)

    def record_violation(self, path: str) -> ImaEntry:
        """Record a measurement violation (ToMToU / open-writers).

        The kernel cannot produce a stable hash for a file that is being
        written while measured, so it logs an all-zero digest instead —
        which appraisal treats as disqualifying, because the verifier can
        no longer say *what* ran.
        """
        from repro.ima.iml import VIOLATION_HASH

        entry = ImaEntry(pcr_index=IMA_PCR_INDEX, file_hash=VIOLATION_HASH,
                         path=path)
        self.iml.append(entry)
        self._extend_tpm(entry)
        # Force a re-measure on next access: the content is unknown now.
        self._measured_generation.pop(path, None)
        return entry

    @property
    def tpm_anchored(self) -> bool:
        """True when measurements also extend a hardware TPM."""
        return self._tpm is not None
