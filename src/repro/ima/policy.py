"""IMA measurement policy.

"The measurement targets are configured by the administrator in a policy
file" (paper, section 2).  The rule grammar here is a working subset of the
kernel's: ``measure``/``dont_measure`` actions with path-prefix, suffix or
exact matches, first rule wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import PolicyError

ACTION_MEASURE = "measure"
ACTION_DONT_MEASURE = "dont_measure"

MATCH_PREFIX = "prefix"
MATCH_SUFFIX = "suffix"
MATCH_EXACT = "exact"


@dataclass(frozen=True)
class PolicyRule:
    """One policy rule: action + path predicate."""

    action: str
    match: str
    pattern: str

    def __post_init__(self) -> None:
        if self.action not in (ACTION_MEASURE, ACTION_DONT_MEASURE):
            raise PolicyError(f"unknown action {self.action!r}")
        if self.match not in (MATCH_PREFIX, MATCH_SUFFIX, MATCH_EXACT):
            raise PolicyError(f"unknown match type {self.match!r}")

    def applies_to(self, path: str) -> bool:
        """True if the rule's predicate matches ``path``."""
        if self.match == MATCH_PREFIX:
            return path.startswith(self.pattern)
        if self.match == MATCH_SUFFIX:
            return path.endswith(self.pattern)
        return path == self.pattern


class ImaPolicy:
    """An ordered rule list; first matching rule decides."""

    def __init__(self, rules: Sequence[PolicyRule] = ()) -> None:
        self._rules: List[PolicyRule] = list(rules)

    @classmethod
    def from_text(cls, text: str) -> "ImaPolicy":
        """Parse a policy file.

        Line format: ``<action> <match> <pattern>``, ``#`` comments, e.g.::

            # measure everything the host can execute
            measure prefix /usr/bin/
            dont_measure prefix /var/log/
        """
        rules = []
        for line_number, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                raise PolicyError(
                    f"line {line_number}: expected '<action> <match> "
                    f"<pattern>', got {raw_line!r}"
                )
            rules.append(PolicyRule(parts[0], parts[1], parts[2]))
        return cls(rules)

    @classmethod
    def default_host_policy(cls) -> "ImaPolicy":
        """The policy the example deployments use: measure executables,
        libraries, the container runtime, and container image content."""
        return cls([
            PolicyRule(ACTION_DONT_MEASURE, MATCH_PREFIX, "/var/log/"),
            PolicyRule(ACTION_DONT_MEASURE, MATCH_PREFIX, "/tmp/"),
            PolicyRule(ACTION_MEASURE, MATCH_PREFIX, "/usr/bin/"),
            PolicyRule(ACTION_MEASURE, MATCH_PREFIX, "/usr/sbin/"),
            PolicyRule(ACTION_MEASURE, MATCH_PREFIX, "/usr/lib/"),
            PolicyRule(ACTION_MEASURE, MATCH_PREFIX, "/boot/"),
            PolicyRule(ACTION_MEASURE, MATCH_PREFIX, "/var/lib/containers/"),
        ])

    def add_rule(self, rule: PolicyRule) -> None:
        """Append a rule (lowest priority)."""
        self._rules.append(rule)

    def should_measure(self, path: str) -> bool:
        """Decide whether ``path`` is a measurement target."""
        for rule in self._rules:
            if rule.applies_to(path):
                return rule.action == ACTION_MEASURE
        return False

    @property
    def rules(self) -> List[PolicyRule]:
        """The ordered rules."""
        return list(self._rules)

    def __len__(self) -> int:
        return len(self._rules)
