#!/usr/bin/env python3
"""Compare two directories of BENCH_E*.json results and flag slowdowns.

Usage::

    python tools/bench_compare.py BASELINE_DIR CURRENT_DIR [--threshold 0.25]

Reads every ``BENCH_E*.json`` present in *both* directories (experiments
that exist on only one side are reported but not compared), matches rows
by experiment + row ``name``, and compares every ``*_seconds`` metric.
A metric that grew by more than ``--threshold`` (default 25%) is printed
as a ``SLOWDOWN`` warning.  Experiments listed in :data:`TOLERANCES`
use their own threshold instead — wall-clock-heavy experiments get more
headroom than the byte-deterministic simulated-time ones.

By default the exit code is 0 when the inputs parse: benchmark timings
on shared CI runners are too noisy to gate a merge on, so this is a
*warn-only* tripwire — the signal is the log line, not a red build.
``--strict`` flips that: any slowdown beyond the threshold exits 1, for
pipelines (nightly runs, dedicated runners) where the timings are
trustworthy.  This mirrors the ``repro lint [--strict]`` convention —
default runs warn, strict runs gate (see docs/ANALYSIS.md).
Malformed inputs (unreadable JSON, missing directories) exit 2 so a
broken pipeline doesn't silently pass.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Row keys compared between baseline and current results.  Everything
#: the harness emits in seconds is a timing; other keys (counts, ratios)
#: are configuration echoes and not regression signals by themselves.
TIMING_SUFFIX = "_seconds"

#: Per-experiment tolerance overrides, consulted *instead of* the global
#: ``--threshold`` where present.  Wall-clock-dominated experiments (E12
#: forks a process pool whose spawn cost depends on the runner's core
#: count and load; E13's seal axis times host CPU, not simulated work)
#: need more headroom than the simulated-time experiments, whose numbers
#: are byte-deterministic per seed.
TOLERANCES = {
    "E12": 0.50,
    "E13": 0.50,
}


def load_reports(directory: Path) -> dict:
    """Map experiment id -> {row name -> row dict} for a results dir."""
    reports = {}
    for path in sorted(directory.glob("BENCH_E*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: cannot read {path}: {exc}") from exc
        rows = {row.get("name", str(i)): row
                for i, row in enumerate(data.get("rows", []))}
        reports[data.get("experiment", path.stem)] = rows
    return reports


def compare(baseline: dict, current: dict, threshold: float,
            tolerances: dict = TOLERANCES) -> list:
    """Return a list of human-readable warning lines.

    ``tolerances`` maps experiment ids to a per-experiment threshold
    that replaces the global one for that experiment's rows.
    """
    warnings = []
    for experiment in sorted(set(baseline) | set(current)):
        if experiment not in baseline:
            print(f"  {experiment}: new experiment (no baseline)")
            continue
        if experiment not in current:
            print(f"  {experiment}: present in baseline only")
            continue
        limit = tolerances.get(experiment, threshold)
        if limit != threshold:
            print(f"  {experiment}: per-experiment tolerance "
                  f"+{limit:.0%}")
        base_rows, cur_rows = baseline[experiment], current[experiment]
        for name in sorted(set(base_rows) & set(cur_rows)):
            base_row, cur_row = base_rows[name], cur_rows[name]
            for key, base_val in base_row.items():
                if not key.endswith(TIMING_SUFFIX):
                    continue
                cur_val = cur_row.get(key)
                if (not isinstance(base_val, (int, float))
                        or not isinstance(cur_val, (int, float))
                        or base_val <= 0):
                    continue
                ratio = cur_val / base_val
                if ratio > 1.0 + limit:
                    warnings.append(
                        f"SLOWDOWN {experiment}/{name}/{key}: "
                        f"{base_val * 1000:.2f}ms -> {cur_val * 1000:.2f}ms "
                        f"({ratio:.2f}x)"
                    )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional slowdown that triggers a warning "
                             "(default: 0.25 = +25%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any slowdown beyond the threshold "
                             "instead of warn-only (same strict/warn "
                             "convention as 'repro lint')")
    args = parser.parse_args(argv)

    if not args.baseline.is_dir():
        print(f"no baseline results at {args.baseline}; nothing to compare")
        return 0
    if not args.current.is_dir():
        raise SystemExit(f"error: current results dir missing: "
                         f"{args.current}")

    baseline = load_reports(args.baseline)
    current = load_reports(args.current)
    if not baseline:
        print("baseline directory has no BENCH_E*.json; nothing to compare")
        return 0

    print(f"comparing {len(current)} experiment(s) against baseline "
          f"(threshold: +{args.threshold:.0%})")
    warnings = compare(baseline, current, args.threshold)
    for line in warnings:
        print(f"::warning::{line}")
    if not warnings:
        print("no slowdowns beyond threshold")
    if args.strict and warnings:
        print(f"strict mode: {len(warnings)} regression(s) beyond "
              f"+{args.threshold:.0%} — failing")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
