"""E12 — fleet enrolment: serial loop vs. worker-pool scheduler.

The serial Figure 1 loop pays two per-VNF costs a fleet only owes per
*run*: every enrollment re-attests the container host (fresh quote, full
IAS round trip, IML appraisal over every entry) and every IAS
verification dials a fresh TLS connection.  The fleet scheduler
(:mod:`repro.core.fleet`) attests each host once (single-flight) and
pipelines all verifications over one pooled connection, so wall-clock
per enrolled VNF drops as the fleet grows.

Measured here with an IML large enough that appraisal dominates (the
regime experiment E2 shows real hosts live in): pooled enrollment of the
full fleet must finish in at most ``SPEEDUP_GATE`` of the serial loop's
wall time at the largest size — and, crucially, issue **byte-identical
certificates** (reserved serials + per-VNF DRBGs + RFC 6979 make worker
interleaving unobservable in the credentials).
"""

import gc
import os
import time

import pytest

from repro.bench.harness import BenchReport, Table, smoke_mode
from repro.bench.workloads import deployment_with_iml_size
from repro.core import events as ev

#: Fleet sizes (number of VNFs).  The acceptance gate applies at the
#: largest size; smaller sizes are reported for the scaling trend.
SIZES = (8,) if smoke_mode() else (8, 32)
#: IML entries per host — appraisal work each *serial* enrollment repeats.
IML_ENTRIES = 600 if smoke_mode() else 2500
ROUNDS = 2          # best-of rounds (fresh deployment each — enrollment
                    # is stateful, so runs cannot be repeated in place)
WORKERS = 8
#: Pooled wall time must be at most this fraction of serial wall time at
#: the largest fleet size (full mode); smoke mode uses a lenient gate
#: since it runs tiny fleets on loaded CI machines.
SPEEDUP_GATE = 0.9 if smoke_mode() else 0.5

#: Kernel-pool width for the multi-core axis.  Smoke mode keeps the CI
#: fork bill small; full mode matches the four-core gate below.
PROCESSES = 2 if smoke_mode() else 4
#: On a machine with at least this many cores, the process-pool run must
#: finish in at most ``MULTICORE_GATE`` of the thread-pool run at the
#: largest fleet size.  Fewer cores (or smoke mode) still run the axis —
#: byte-identity and dispatch accounting are asserted everywhere — but
#: the wall-clock gate is meaningless without real parallel hardware.
MULTICORE_MIN_CORES = 4
MULTICORE_GATE = 0.6

#: Both E12 tests feed one report — ``BenchReport.write()`` replaces the
#: whole ``BENCH_E12.json``, so per-test writes would drop the other
#: test's rows.  The autouse module fixture flushes once at teardown.
_REPORT = BenchReport("E12")


@pytest.fixture(scope="module", autouse=True)
def _flush_report():
    yield
    _REPORT.write()


def _build(vnf_count):
    return deployment_with_iml_size(IML_ENTRIES, seed=b"e12-fleet",
                                    vnf_count=vnf_count)


def _timed(run, dep):
    """Wall/sim time of one run with GC parked outside the measurement."""
    gc.collect()
    gc.disable()
    try:
        sim_start = dep.clock.now()
        start = time.perf_counter()
        result = run(dep)
        wall = time.perf_counter() - start
        sim = dep.clock.now() - sim_start
    finally:
        gc.enable()
    return result, wall, sim


def _certs(dep):
    return {name: dep.vm.issued_certificate(name).to_bytes()
            for name in dep.vnf_names}


@pytest.mark.experiment("E12")
def test_e12_fleet_enrollment():
    report = _REPORT
    table = Table(
        f"E12: serial loop vs. fleet scheduler "
        f"(workers={WORKERS}, IML={IML_ENTRIES})",
        ["vnfs", "serial_wall_ms", "fleet_wall_ms", "wall_ratio",
         "serial_sim_ms", "fleet_sim_ms"],
    )

    ratios = {}
    for size in SIZES:
        serial_wall = fleet_wall = float("inf")
        serial_sim = fleet_sim = float("inf")
        serial_certs = fleet_certs = None
        serial_attests = fleet_attests = None
        for _ in range(ROUNDS):
            dep = _build(size)
            trace, wall, sim = _timed(
                lambda d: d.run_workflow(), dep
            )
            assert trace.fully_succeeded, trace.failed
            serial_wall, serial_sim = (min(serial_wall, wall),
                                       min(serial_sim, sim))
            serial_certs = _certs(dep)
            serial_attests = len(
                dep.vm.audit.events(kind=ev.EVENT_HOST_ATTESTED)
            )

            dep = _build(size)
            fleet, wall, sim = _timed(
                lambda d: d.enroll_fleet(workers=WORKERS), dep
            )
            assert fleet.fully_succeeded, fleet.failed
            fleet_wall, fleet_sim = (min(fleet_wall, wall),
                                     min(fleet_sim, sim))
            fleet_certs = _certs(dep)
            fleet_attests = len(
                dep.vm.audit.events(kind=ev.EVENT_HOST_ATTESTED)
            )
            # One pooled connection served the whole fleet.
            assert fleet.ias_connects == 1
            assert fleet.ias_reused_exchanges == size

        # Byte-identity: worker interleaving must be unobservable in the
        # issued credentials (serials, keys, signatures — everything).
        assert fleet_certs == serial_certs

        # The amortization the speedup comes from, stated exactly: the
        # serial loop attested the host once per VNF, the fleet once.
        assert serial_attests == size
        assert fleet_attests == 1

        ratio = fleet_wall / serial_wall
        ratios[size] = ratio
        table.add_row(size, serial_wall * 1000, fleet_wall * 1000, ratio,
                      serial_sim * 1000, fleet_sim * 1000)
        report.add(
            f"fleet-{size}", vnfs=size, workers=WORKERS,
            iml_entries=IML_ENTRIES,
            serial_wall_seconds=serial_wall,
            fleet_wall_seconds=fleet_wall,
            wall_ratio=ratio,
            serial_sim_seconds=serial_sim,
            fleet_sim_seconds=fleet_sim,
        )

        # Simulated time falls too: N-1 host attestations' worth of
        # network and appraisal charges disappear from the virtual clock.
        assert fleet_sim < serial_sim

    table.show()
    report.add_table(table)

    # Acceptance gate at the largest fleet (like E11's 3x crypto gate).
    largest = max(SIZES)
    assert ratios[largest] <= SPEEDUP_GATE, (
        f"fleet of {largest} VNFs: pooled wall time is "
        f"{ratios[largest]:.2f}x the serial loop's "
        f"(gate: <= {SPEEDUP_GATE}x)"
    )
    if len(SIZES) > 1:
        # Scaling trend: amortization improves (or holds) as the fleet
        # grows — the per-run costs are spread over more VNFs.
        assert ratios[max(SIZES)] <= ratios[min(SIZES)] * 1.15


@pytest.mark.experiment("E12")
def test_e12_fleet_multicore():
    """Multi-core axis: thread-pool scheduler vs. the same scheduler with
    the verify/sign math dispatched to ``PROCESSES`` kernel workers and
    IAS exchanges batched.  The GIL serializes the thread pool's CPU
    work; processes escape it — without changing a single issued byte."""
    report = _REPORT
    cores = os.cpu_count() or 1
    table = Table(
        f"E12: thread pool vs. process kernels "
        f"(workers={WORKERS}, processes={PROCESSES}, cores={cores})",
        ["vnfs", "thread_wall_ms", "process_wall_ms", "multicore_ratio",
         "kernel_dispatched", "ias_batched"],
    )

    ratios = {}
    for size in SIZES:
        thread_wall = process_wall = float("inf")
        thread_certs = process_certs = None
        dispatched = batched = 0
        for _ in range(ROUNDS):
            dep = _build(size)
            fleet, wall, _ = _timed(
                lambda d: d.enroll_fleet(workers=WORKERS), dep
            )
            assert fleet.fully_succeeded, fleet.failed
            thread_wall = min(thread_wall, wall)
            thread_certs = _certs(dep)

            dep = _build(size)
            fleet, wall, _ = _timed(
                lambda d: d.enroll_fleet(workers=WORKERS,
                                         processes=PROCESSES), dep
            )
            assert fleet.fully_succeeded, fleet.failed
            process_wall = min(process_wall, wall)
            process_certs = _certs(dep)
            dispatched = fleet.kernel_dispatches
            batched = fleet.ias_batched_exchanges
            # The pool is scoped to the run: nothing stays attached.
            assert dep.ias._kernel_pool is None

        # Byte-identity: the process boundary (and IAS batching) must be
        # unobservable in the issued credentials.
        assert process_certs == thread_certs

        # The offload actually happened: kernels crossed the process
        # boundary, and the IAS saw batched verifications.
        assert dispatched > 0
        assert batched > 0

        ratio = process_wall / thread_wall
        ratios[size] = ratio
        table.add_row(size, thread_wall * 1000, process_wall * 1000,
                      ratio, dispatched, batched)
        report.add(
            f"multicore-{size}", vnfs=size, workers=WORKERS,
            processes=PROCESSES, cpu_count=cores,
            iml_entries=IML_ENTRIES,
            thread_wall_seconds=thread_wall,
            process_wall_seconds=process_wall,
            multicore_ratio=ratio,
            kernel_dispatches=dispatched,
            ias_batched_exchanges=batched,
        )

    table.show()
    report.add_table(table)

    # The wall-clock gate needs real parallel hardware; a 1-core CI box
    # (or a tiny smoke fleet) still ran the axis above, it just cannot
    # demonstrate the speedup.
    if cores >= MULTICORE_MIN_CORES and not smoke_mode():
        largest = max(SIZES)
        assert ratios[largest] <= MULTICORE_GATE, (
            f"fleet of {largest} VNFs on {cores} cores: process-pool "
            f"wall time is {ratios[largest]:.2f}x the thread pool's "
            f"(gate: <= {MULTICORE_GATE}x)"
        )
