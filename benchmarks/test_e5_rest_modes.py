"""E5 — the northbound API's three security modes (paper §3).

Expected shape: connection setup cost orders HTTP < HTTPS < trusted HTTPS
(zero, one-sided, and mutual-auth handshakes respectively); steady-state
per-request cost orders HTTP below both TLS modes, with HTTPS and trusted
HTTPS nearly identical (client auth costs only at the handshake).
"""

import pytest

from repro.bench.harness import Table, measure
from repro.core import Deployment
from repro.crypto.keys import generate_keypair

STEADY_REQUESTS = 50


@pytest.mark.experiment("E5")
def test_e5_rest_security_modes(benchmark):
    deployment = Deployment(seed=b"bench-e5", vnf_count=1)
    deployment.enroll("vnf-1")

    key = generate_keypair(deployment.rng)
    cert = deployment.vm.ca.issue(
        subject=deployment.vm.issued_certificate("vnf-1").subject,
        public_key_bytes=key.public.to_bytes(),
        now=deployment.clock.now_seconds(),
    )

    def client_for(mode):
        if mode == "trusted-https":
            return deployment.baseline_client(
                mode=mode, client_chain=[cert], client_key=key
            )
        return deployment.baseline_client(mode=mode)

    table = Table(
        "E5: northbound request cost by security mode",
        ["mode", "setup_ms", "steady_us_per_req", "requests"],
    )
    setup_costs = {}
    steady_costs = {}
    for mode in ("http", "https", "trusted-https"):
        client = client_for(mode)
        setup = measure(deployment.clock, client.summary)
        setup_costs[mode] = setup.simulated_seconds
        total = 0.0
        for _ in range(STEADY_REQUESTS):
            total += measure(deployment.clock,
                             client.summary).simulated_seconds
        steady_costs[mode] = total / STEADY_REQUESTS
        table.add_row(mode, setup.simulated_seconds * 1000,
                      steady_costs[mode] * 1e6, STEADY_REQUESTS)
        client.close()
    table.show()

    # Connection setup: HTTP < HTTPS < trusted HTTPS.
    assert setup_costs["http"] < setup_costs["https"]
    assert setup_costs["https"] < setup_costs["trusted-https"]
    # Steady state: HTTP cheapest; the two TLS modes within 25% of each
    # other (client auth only affects the handshake).
    assert steady_costs["http"] < steady_costs["https"]
    assert steady_costs["http"] < steady_costs["trusted-https"]
    ratio = steady_costs["trusted-https"] / steady_costs["https"]
    assert 0.75 < ratio < 1.25

    client = client_for("https")
    benchmark.pedantic(client.summary, rounds=10, iterations=1)
