"""E15 — trusted fabric: failover convergence and revocation fan-out.

The paper runs one Floodlight controller; TruSDN-scale deployments
(PAPERS.md) replicate it.  This experiment grows the deployment's
controller into a :class:`~repro.sdn.fabric.TrustedFabric` — N replicas
sharing a replicated CA-cert keystore — and measures the two costs that
replication is supposed to bound:

* **Failover convergence** at a fixed switch population: crash the
  leader, then :meth:`~repro.sdn.fabric.TrustedFabric.converge` probes
  the replicas, re-elects, and re-homes the orphaned switches across
  the survivors.  Re-homing work per survivor is ``S/R / (R-1)``
  switches, so convergence must *fall* as replicas are added — the
  sub-linear scaling gate.

* **Revocation fan-out** at 1k endpoints: one ``revoke_vnf`` on any
  replica must reach every switch fabric-wide.  Per-switch pushes ride
  each replica's private pipeline timeline (the E13 shard model), so
  the drain cost is ``S/R`` pushes, while log replication adds the
  O(R) leader→follower shipping — both sides recorded per replica
  count in ``BENCH_E15.json`` (rows prefixed ``fanout-``).

* **Byte-identity**: building the fabric and enrolling through it must
  leave the deployment's issued credentials byte-identical to the
  single-controller path — the fabric consumes no randomness and no CA
  serials.
"""

import pytest

from repro.bench.harness import BenchReport, Table, smoke_mode
from repro.core import Deployment
from repro.net.faults import FaultPlan
from repro.net.simnet import Network
from repro.sdn.fabric import TrustedFabric

#: Replica axis (at least two so there is always a survivor).
REPLICA_AXIS = [2, 4] if smoke_mode() else [2, 4, 8]
#: Switch population for the convergence gate (fixed across the axis).
CONVERGE_SWITCHES = 64 if smoke_mode() else 256
#: Endpoint population for the fan-out gate — the ISSUE's 1k endpoints.
FANOUT_ENDPOINTS = 128 if smoke_mode() else 1024
#: Fan-out must complete within this much simulated time at every
#: replica count (a loose absolute bound; the shape gates do the work).
FANOUT_BOUND_SECONDS = 0.25
CONVERGE_BOUND_SECONDS = 1.0


def _fabric(replicas: int, endpoints: int) -> TrustedFabric:
    network = Network()
    network.install_faults(FaultPlan())
    fabric = TrustedFabric(network, replica_count=replicas)
    fabric.add_endpoints(endpoints)
    fabric.submit_credential("vnf-victim", b"victim-cert", host="h-victim")
    return fabric


@pytest.mark.experiment("E15")
def test_e15_fabric_convergence_and_fanout():
    report = BenchReport("E15")

    # ------------------------------------- gate 1: failover convergence
    converge_table = Table(
        f"E15: leader crash at {CONVERGE_SWITCHES} switches",
        ["replicas", "rehomed", "probes", "sim_ms", "new_leader"],
    )
    converge_seconds = {}
    for replicas in REPLICA_AXIS:
        fabric = _fabric(replicas, CONVERGE_SWITCHES)
        fabric.crash_replica(fabric.leader_rank)
        outcome = fabric.converge()
        converge_seconds[replicas] = outcome.seconds
        # Every orphan re-homed onto a live rank, none left behind.
        assert outcome.switches_rehomed > 0
        for dpid in (f"ep{i + 1:05d}" for i in range(CONVERGE_SWITCHES)):
            assert fabric.home_of(dpid) in outcome.live_ranks
        # Survivors hold byte-identical keystores.
        assert len(set(fabric.keystore_digests().values())) == 1
        assert outcome.seconds < CONVERGE_BOUND_SECONDS
        converge_table.add_row(replicas, outcome.switches_rehomed,
                               outcome.probes,
                               f"{outcome.seconds * 1000:.3f}",
                               outcome.new_leader)
        report.add(
            f"converge-r{replicas}", replicas=replicas,
            switches=CONVERGE_SWITCHES,
            switches_rehomed=outcome.switches_rehomed,
            probes=outcome.probes,
            convergence_seconds=outcome.seconds,
        )
    converge_table.show()
    report.add_table(converge_table)

    # Sub-linear in replicas: more survivors share the re-homing work,
    # so convergence strictly improves along the axis.
    for smaller, larger in zip(REPLICA_AXIS, REPLICA_AXIS[1:]):
        assert converge_seconds[larger] < converge_seconds[smaller], (
            f"convergence did not improve from {smaller} to {larger} "
            f"replicas: {converge_seconds[smaller]:.6f}s -> "
            f"{converge_seconds[larger]:.6f}s"
        )

    # -------------------------------- gate 2: fan-out at 1k endpoints
    fanout_table = Table(
        f"E15: revoke_vnf fan-out to {FANOUT_ENDPOINTS} endpoints",
        ["replicas", "reached", "replication_ms", "drain_ms", "total_ms"],
    )
    for replicas in REPLICA_AXIS:
        fabric = _fabric(replicas, FANOUT_ENDPOINTS)
        outcome = fabric.revoke_vnf("vnf-victim")
        assert outcome.subjects == ["vnf-victim"]
        # Every endpoint reached: no switch may keep honouring the
        # revoked credential.
        assert outcome.switches_reached == FANOUT_ENDPOINTS
        assert outcome.switches_stale == 0
        assert outcome.total_seconds < FANOUT_BOUND_SECONDS
        for rank in range(replicas):
            assert fabric.replica(rank).keystore.is_revoked("vnf-victim")
        fanout_table.add_row(
            replicas, outcome.switches_reached,
            f"{outcome.replication_seconds * 1000:.3f}",
            f"{outcome.drain_seconds * 1000:.3f}",
            f"{outcome.total_seconds * 1000:.3f}",
        )
        report.add(
            f"fanout-r{replicas}", replicas=replicas,
            endpoints=FANOUT_ENDPOINTS,
            switches_reached=outcome.switches_reached,
            replication_seconds=outcome.replication_seconds,
            drain_seconds=outcome.drain_seconds,
            fanout_seconds=outcome.total_seconds,
        )
    fanout_table.show()
    report.add_table(fanout_table)
    report.write()


@pytest.mark.experiment("E15")
def test_e15_fabric_credentials_byte_identical():
    """Building a fabric must not perturb credential issuance: same
    seed, same VNF, byte-identical certificate with and without it."""
    plain = Deployment(seed=b"bench-e15-ident", vnf_count=2)
    plain.enroll("vnf-1")
    reference = plain.vm.issued_certificate("vnf-1").to_bytes()

    fabricated = Deployment(seed=b"bench-e15-ident", vnf_count=2)
    fabric = fabricated.build_fabric(replica_count=3)
    fabricated.enroll_fabric("vnf-1")
    via_fabric = fabricated.vm.issued_certificate("vnf-1").to_bytes()

    assert via_fabric == reference
    # And the replicated copy every controller holds is that same cert.
    assert fabric.credential("vnf-1") == reference
    assert len(set(fabric.keystore_digests().values())) == 1
