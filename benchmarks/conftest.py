"""Benchmark-suite configuration.

Run with ``pytest benchmarks/ --benchmark-only``.  Every experiment prints
its result table (visible with ``-s``; captured otherwise) and asserts the
*shape* of the result — who wins, what grows linearly, where the crossover
sits — since absolute numbers depend on the host machine.
"""

import pytest


def pytest_configure(config):
    # The benchmark files live outside the tests/ rootdir default.
    config.addinivalue_line("markers",
                            "experiment(id): maps a benchmark to EXPERIMENTS.md")
