"""E3 — use case 2: enrolment at fleet scale, and the paper's keystore
argument.

Expected shape: per-VNF enrolment cost is flat in fleet size in both
validation models (attestation dominates), but the *controller keystore*
grows linearly in stock-Floodlight mode and stays empty in the paper's
trusted-CA mode — one keystore update per minted credential is exactly the
operational cost the paper's design removes.
"""

import pytest

from repro.bench.harness import Table
from repro.bench.workloads import fleet_deployment

FLEET_SIZES = [1, 4, 8]


def enroll_fleet(deployment):
    for vnf_name in deployment.vnf_names:
        deployment.enroll(vnf_name)


@pytest.mark.experiment("E3")
def test_e3_enrollment_fleet(benchmark):
    table = Table(
        "E3: fleet enrolment — trusted-CA vs. per-client keystore",
        ["validation", "vnfs", "sim_ms_total", "sim_ms_per_vnf",
         "keystore_entries", "keystore_updates"],
    )
    per_vnf_costs = {}
    for validation in ("ca", "keystore"):
        for fleet in FLEET_SIZES:
            deployment = fleet_deployment(
                fleet, seed=f"e3-{validation}-{fleet}".encode(),
                client_validation=validation,
            )
            start = deployment.clock.now()
            enroll_fleet(deployment)
            sim_total = deployment.clock.now() - start
            entries = len(deployment.keystore)
            table.add_row(validation, fleet, sim_total * 1000,
                          sim_total * 1000 / fleet, entries, entries)
            per_vnf_costs[(validation, fleet)] = sim_total / fleet

            if validation == "ca":
                assert entries == 0  # the paper's design point
            else:
                assert entries == fleet  # one update per credential
    table.show()

    # Per-VNF cost roughly flat in fleet size (within 2x across the sweep).
    for validation in ("ca", "keystore"):
        costs = [per_vnf_costs[(validation, f)] for f in FLEET_SIZES]
        assert max(costs) < 2 * min(costs)

    # Benchmark a single enrolment end to end (wall time).
    def one_enrollment():
        deployment = fleet_deployment(1, seed=b"e3-bench")
        deployment.enroll("vnf-1")

    benchmark.pedantic(one_enrollment, rounds=3, iterations=1)
