"""E9 — ablation: VM-generated keys vs. in-enclave CSR provisioning.

The paper's main path has the Verification Manager "generate the
certificate and private key and provision them to the corresponding VNFs
enclaves"; the CSR variant keeps the private key inside the enclave from
birth (the VM only ever sees the public half).  Expected shape: both
variants land within the same cost envelope (the IAS round trip and quote
verification dominate; the extra in-enclave keygen and CSR signature are
microseconds), so the stronger key-custody property is essentially free.
"""

import pytest

from repro.bench.harness import Table, measure
from repro.core import Deployment

TRIALS = 5


def provision_cost(variant: str, trial: int) -> float:
    deployment = Deployment(seed=f"e9-{variant}-{trial}".encode(),
                            vnf_count=1)
    deployment.vm.attest_host(deployment.agent_client, deployment.host.name)
    address = str(deployment.controller_address())
    if variant == "csr":
        action = lambda: deployment.vm.enroll_vnf_csr(
            deployment.agent_client, deployment.host.name, "vnf-1", address
        )
    else:
        action = lambda: deployment.vm.enroll_vnf(
            deployment.agent_client, deployment.host.name, "vnf-1", address
        )
    measurement = measure(deployment.clock, action)
    assert deployment.credential_enclaves["vnf-1"].has_credentials()
    # Either way the enrolled VNF must reach the controller.
    assert deployment.enclave_client("vnf-1").summary()
    return measurement.simulated_seconds


@pytest.mark.experiment("E9")
def test_e9_provisioning_variants(benchmark):
    table = Table(
        "E9: provisioning variants (steps 3-5 simulated time)",
        ["variant", "key custody", "sim_ms_mean"],
    )
    means = {}
    for variant, custody in (("vm-generated", "VM sees the private key"),
                             ("csr", "key never leaves the enclave")):
        costs = [provision_cost(variant, trial) for trial in range(TRIALS)]
        means[variant] = sum(costs) / len(costs)
        table.add_row(variant, custody, means[variant] * 1000)
    table.show()

    # Same cost envelope: within 25% of each other.
    ratio = means["csr"] / means["vm-generated"]
    assert 0.75 < ratio < 1.25

    deployment = Deployment(seed=b"e9-bench", vnf_count=1)
    deployment.vm.attest_host(deployment.agent_client, deployment.host.name)
    benchmark.pedantic(
        lambda: deployment.vm.enroll_vnf_csr(
            deployment.agent_client, deployment.host.name, "vnf-1",
            str(deployment.controller_address()),
        ),
        rounds=1, iterations=1,
    )
