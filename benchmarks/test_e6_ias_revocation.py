"""E6 — IAS quote verification vs. revocation-list size (paper §2 steps 2/4).

Expected shape: verification cost grows linearly in the SigRL size (each
entry forces one pseudonym comparison, as in real EPID non-revoked proofs);
revoked platforms are rejected with zero false accepts at every list size.
"""

import time

import pytest

from repro.bench.harness import Table
from repro.crypto.keys import generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.ias.service import IasService, QuoteStatus
from repro.net.clock import VirtualClock
from repro.sgx.enclave import EnclaveImage
from repro.sgx.platform import SgxPlatform
from repro.sgx.report import Report
from repro.sgx.sigstruct import sign_image

SIGRL_SIZES = [0, 512, 2048, 4096]
VERIFICATIONS_PER_POINT = 10


class _Quotable:
    ECALLS = ("get_report",)

    def __init__(self, api):
        self._api = api

    def get_report(self, target, report_data):
        return self._api.create_report(target, report_data).to_bytes()


def build_world(seed: bytes):
    rng = HmacDrbg(seed)
    clock = VirtualClock()
    ias = IasService(rng=rng, now=clock.now_seconds)
    platform = SgxPlatform("host", clock=clock, rng=rng)
    ias.register_platform(platform)
    image = EnclaveImage.from_behavior_class(_Quotable, "quotable")
    enclave = platform.create_enclave(
        image, sign_image(generate_keypair(rng), image.code, "v")
    )
    qe = platform.quoting_enclave
    report = Report.from_bytes(
        enclave.ecall("get_report", qe.target_info(), b"\x01" * 64)
    )
    quote = qe.generate(report, b"deployment")
    return rng, ias, platform, quote


def fill_sigrl(ias, rng, count: int) -> None:
    """Pad the SigRL with synthetic same-basename entries (other members)."""
    ias.sig_rl.entries = [
        (b"deployment", rng.random_bytes(32)) for _ in range(count)
    ]
    ias.sig_rl.version = count


@pytest.mark.experiment("E6")
def test_e6_sigrl_scaling(benchmark):
    rng, ias, platform, quote = build_world(b"bench-e6")
    quote_bytes = quote.to_bytes()

    table = Table(
        "E6: IAS quote verification vs. SigRL size",
        ["sigrl_entries", "wall_us_per_verify", "verdict"],
    )
    costs = []
    for size in SIGRL_SIZES:
        fill_sigrl(ias, rng, size)
        start = time.perf_counter()
        for _ in range(VERIFICATIONS_PER_POINT):
            avr = ias.verify_quote(quote_bytes)
        elapsed = (time.perf_counter() - start) / VERIFICATIONS_PER_POINT
        assert avr.quote_status == QuoteStatus.OK  # padding never matches
        costs.append(elapsed)
        table.add_row(size, elapsed * 1e6, avr.quote_status)
    table.show()

    # Linear shape: the largest list costs measurably more than the empty
    # one, and cost never decreases along the sweep (allowing timer noise
    # on adjacent points via a cumulative check).
    assert costs[-1] > costs[0] * 1.5

    # Zero false accepts / correct revocation verdicts.
    fill_sigrl(ias, rng, 0)
    ias.revoke_quote_signature(quote)
    assert (ias.verify_quote(quote_bytes).quote_status
            == QuoteStatus.SIGNATURE_REVOKED)
    ias.revoke_platform("host")
    assert (ias.verify_quote(quote_bytes).quote_status
            == QuoteStatus.KEY_REVOKED)

    fill_sigrl(ias, rng, 2048)
    benchmark.pedantic(lambda: ias.verify_quote(quote_bytes),
                       rounds=10, iterations=1)


@pytest.mark.experiment("E6")
def test_e6_batch_verify_amortizes_rl_scan():
    """``verify_quotes`` pays for one revocation-table build per batch
    instead of one full scan per quote: the modelled scan counter grows
    O(|RL| + B) instead of O(B x |RL|) — with byte-identical AVRs."""
    batch_size, rl_size = 8, 2048

    # Two same-seed worlds: every DRBG draw (RL padding included) lines
    # up, so the two verification paths start from identical state.
    rng_seq, ias_seq, _, quote_seq = build_world(b"bench-e6-batch")
    rng_bat, ias_bat, _, quote_bat = build_world(b"bench-e6-batch")
    fill_sigrl(ias_seq, rng_seq, rl_size)
    fill_sigrl(ias_bat, rng_bat, rl_size)
    quote_bytes = quote_seq.to_bytes()
    assert quote_bytes == quote_bat.to_bytes()

    nonces = [f"batch-{index}" for index in range(batch_size)]
    seq_base = ias_seq.rl_entries_scanned
    seq_avrs = [ias_seq.verify_quote(quote_bytes, nonce=nonce)
                for nonce in nonces]
    seq_scanned = ias_seq.rl_entries_scanned - seq_base

    bat_base = ias_bat.rl_entries_scanned
    bat_avrs = ias_bat.verify_quotes(
        [(quote_bytes, nonce) for nonce in nonces])
    bat_scanned = ias_bat.rl_entries_scanned - bat_base

    # Byte-identity between the two paths: same report ids, timestamps,
    # verdicts, signatures — the batch is unobservable in the AVRs.
    assert ([avr.to_json() for avr in bat_avrs]
            == [avr.to_json() for avr in seq_avrs])
    assert all(avr.quote_status == QuoteStatus.OK for avr in bat_avrs)

    # Sequential: every quote re-scans the full SigRL.
    assert seq_scanned >= batch_size * rl_size
    # Batched: one table build plus O(1) lookups per quote.
    assert bat_scanned <= rl_size + 4 * batch_size
    assert bat_scanned * (batch_size // 2) < seq_scanned
