"""E11 — crypto hot path: fast-path EC engine vs. the reference ladder.

The enrollment pipeline is ECDSA-bound: every certificate issuance signs,
every chain validation and handshake verifies.  This experiment measures
the three fast paths the EC engine grew —

* fixed-base comb for ``k*G`` (signing, key generation),
* Strauss/wNAF dual-scalar ``u1*G + u2*Q`` (verification), and
* the validated-point LRU that retires the redundant full-order check —

against the untouched reference double-and-add ladder, and cross-checks
every fast-path result byte-for-byte against the reference output.  The
acceptance gate is a >=3x wall-time speedup on both generator
multiplication and full ``ecdsa_verify``.

A fourth table tracks the streaming SHA-256 fix: doubling the message
size must roughly double (not quadruple) chunked-update time.
"""

import time

import pytest

from repro.bench.harness import BenchReport, Table, smoke_mode, summarize
from repro.crypto.ec import P256
from repro.crypto.ecdsa import ecdsa_sign, ecdsa_verify, ecdsa_verify_reference
from repro.crypto.keys import generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.crypto.sha256 import SHA256
from repro.errors import InvalidSignature

# Smoke mode shrinks iteration counts; the assertions on speedup and
# byte-identity are the same either way.
ITERS = 6 if smoke_mode() else 25
ROUNDS = 5
SPEEDUP_GATE = 3.0


def _timed_batch(fn, args_list):
    """Best-of-ROUNDS wall time for running ``fn`` over ``args_list``."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for args in args_list:
            fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _scalars(label, count):
    rng = HmacDrbg(seed=f"e11-{label}".encode())
    return [rng.random_scalar(P256.n) for _ in range(count)]


@pytest.mark.experiment("E11")
def test_e11_crypto_hotpath():
    report = BenchReport("E11")
    curve = P256
    curve.reset_validation_cache()
    curve.stats.reset()

    # ------------------------------------------------ generator multiply
    scalars = _scalars("genmult", ITERS)
    # Cross-check first (also warms the comb table outside the timed run).
    for k in scalars:
        fast = curve.multiply_generator(k)
        ref = curve.multiply(k, curve.generator)
        assert curve.encode_point(fast) == curve.encode_point(ref)

    ref_s = _timed_batch(lambda k: curve.multiply(k, curve.generator),
                        [(k,) for k in scalars])
    fast_s = _timed_batch(curve.multiply_generator, [(k,) for k in scalars])
    gen_speedup = ref_s / fast_s

    # ------------------------------------------------ ecdsa verify
    rng = HmacDrbg(seed=b"e11-verify")
    key = generate_keypair(rng)
    cases = []
    for i in range(ITERS):
        message = b"e11 message %d" % i + rng.random_bytes(24)
        signature = ecdsa_sign(key.scalar, message)
        cases.append((key.public.point, message, signature))
    # Cross-check: fast and reference verifiers agree on good and bad input.
    for point, message, (r, s) in cases:
        ecdsa_verify(point, message, (r, s))
        ecdsa_verify_reference(point, message, (r, s))
        bad = ((r ^ 1) or 1, s)
        with pytest.raises(InvalidSignature):
            ecdsa_verify(point, message, bad)
        with pytest.raises(InvalidSignature):
            ecdsa_verify_reference(point, message, bad)

    ref_s2 = _timed_batch(ecdsa_verify_reference, cases)
    fast_s2 = _timed_batch(ecdsa_verify, cases)
    verify_speedup = ref_s2 / fast_s2

    table = Table(
        "E11: EC fast paths vs. reference ladder",
        ["op", "iters", "ref_ms", "fast_ms", "speedup"],
    )
    table.add_row("multiply_generator", ITERS,
                  ref_s * 1000, fast_s * 1000, gen_speedup)
    table.add_row("ecdsa_verify", ITERS,
                  ref_s2 * 1000, fast_s2 * 1000, verify_speedup)
    table.show()

    report.add("multiply_generator", iterations=ITERS,
               reference_seconds=ref_s, fast_seconds=fast_s,
               speedup=gen_speedup)
    report.add("ecdsa_verify", iterations=ITERS,
               reference_seconds=ref_s2, fast_seconds=fast_s2,
               speedup=verify_speedup)
    report.add_table(table)

    # Acceptance gate: the paper-scale experiments only get faster if
    # both hot operations beat the reference ladder by 3x.
    assert gen_speedup >= SPEEDUP_GATE, (
        f"generator multiply speedup {gen_speedup:.2f}x < {SPEEDUP_GATE}x"
    )
    assert verify_speedup >= SPEEDUP_GATE, (
        f"ecdsa_verify speedup {verify_speedup:.2f}x < {SPEEDUP_GATE}x"
    )

    # ------------------------------------------------ validation cache
    stats = curve.stats.snapshot()
    cache_table = Table(
        "E11: point-validation LRU (same key verified repeatedly)",
        ["metric", "value"],
    )
    for name in ("validation_cache_hits", "validation_cache_misses",
                 "order_checks_skipped", "dual_mults", "generator_mults"):
        cache_table.add_row(name, stats[name])
    cache_table.show()
    report.add_table(cache_table)

    # The repeated verifies above hit the same public key: exactly one
    # miss for it, everything after is a hit, and cofactor-1 P-256 never
    # pays the full-order multiply.
    assert stats["validation_cache_hits"] > stats["validation_cache_misses"]
    assert stats["order_checks_skipped"] >= 1
    assert stats["dual_mults"] >= ITERS

    report.add("validation_cache", **{k: stats[k] for k in stats})
    report.write()


@pytest.mark.experiment("E11")
def test_e11_sha256_streaming_linear():
    """Chunked hashing is linear in input size after the buffering fix."""
    chunk = b"\xab" * 1024
    sizes = [64, 128] if smoke_mode() else [128, 256]  # in chunks

    def stream(n_chunks):
        h = SHA256()
        for _ in range(n_chunks):
            h.update(chunk)
        return h.digest()

    # Correctness against one-shot hashing.
    one_shot = SHA256()
    one_shot.update(chunk * sizes[0])
    assert stream(sizes[0]) == one_shot.digest()

    samples = {n: [] for n in sizes}
    for _ in range(ROUNDS):
        for n in sizes:
            start = time.perf_counter()
            stream(n)
            samples[n].append(time.perf_counter() - start)

    small = min(samples[sizes[0]])
    large = min(samples[sizes[1]])
    ratio = large / small

    table = Table(
        "E11: streaming SHA-256 scaling (2x input)",
        ["chunks_small", "chunks_large", "t_small_ms", "t_large_ms", "ratio"],
    )
    table.add_row(sizes[0], sizes[1], small * 1000, large * 1000, ratio)
    table.show()

    report = BenchReport("E11_SHA256")
    report.add("sha256_streaming", chunks_small=sizes[0],
               chunks_large=sizes[1],
               wall=summarize(samples[sizes[1]]), ratio=ratio)
    report.add_table(table)
    report.write()

    # O(n^2) buffering made doubling the input ~4x the time; linear
    # hashing keeps the ratio near 2 (generous bound for noisy CI).
    assert ratio < 3.2, f"doubling input scaled time by {ratio:.2f}x"
