"""E2 — use case 1: integrity attestation latency vs. IML size, and the
pristine/tampered verdict matrix.

Expected shape: attestation cost grows linearly with the number of IML
entries (hashing + appraisal are per-entry); a tampered host is rejected at
every size, a pristine host accepted at every size.
"""

import pytest

from repro.bench.harness import Table, measure
from repro.bench.workloads import deployment_with_iml_size

IML_SIZES = [16, 64, 256, 1024]


def attest_once(deployment):
    return deployment.vm.attest_host(deployment.agent_client,
                                     deployment.host.name)


@pytest.mark.experiment("E2")
def test_e2_attestation_scaling(benchmark):
    table = Table(
        "E2: host attestation vs. IML size",
        ["iml_entries", "sim_ms", "wall_ms", "verdict"],
    )
    sims = []
    for size in IML_SIZES:
        deployment = deployment_with_iml_size(size,
                                              seed=f"e2-{size}".encode())
        entries = len(deployment.host.ima.iml)
        measurement = measure(deployment.clock,
                              lambda d=deployment: attest_once(d))
        assert measurement.result.trustworthy
        sims.append(measurement.simulated_seconds)
        table.add_row(entries, measurement.simulated_seconds * 1000,
                      measurement.wall_seconds * 1000, "TRUSTED")

    # Tamper matrix at the largest size.
    tampered = deployment_with_iml_size(IML_SIZES[-1], seed=b"e2-tampered")
    tampered.host.tamper_file("/usr/bin/dockerd", b"rootkit")
    verdict = attest_once(tampered)
    assert not verdict.trustworthy
    table.add_row(len(tampered.host.ima.iml), float("nan"), float("nan"),
                  "REJECTED (tampered)")
    table.show()

    # Shape: simulated cost strictly increases with IML size; the increments
    # grow linearly in the entry count (per-entry appraisal work) on top of
    # the fixed IAS round trip.
    assert sims == sorted(sims)
    assert sims[-1] > sims[0] * 1.5
    per_entry = (sims[-1] - sims[0]) / (IML_SIZES[-1] - IML_SIZES[0])
    mid_slope = (sims[2] - sims[0]) / (IML_SIZES[2] - IML_SIZES[0])
    assert per_entry == pytest.approx(mid_slope, rel=0.5)

    # Benchmark the representative mid-size attestation (wall time).
    deployment = deployment_with_iml_size(256, seed=b"e2-bench")
    benchmark.pedantic(lambda: attest_once(deployment), rounds=5,
                       iterations=1)
