"""E8 — sealed credential persistence across enclave restarts.

Expected shape: seal/unseal cost and blob size grow linearly with payload
size with a small constant envelope (DER framing + GCM tag + key id);
cross-platform unsealing fails at every size; and restoring a sealed
credential bundle is far cheaper than a full re-enrolment.
"""

import pytest

from repro.bench.harness import Table, measure
from repro.core import Deployment
from repro.core.credential_enclave import CredentialEnclave
from repro.crypto.rng import HmacDrbg
from repro.errors import SealingError
from repro.sgx.enclave import EnclaveIdentity
from repro.sgx.sealing import seal, unseal

PAYLOAD_SIZES = [256, 1024, 4096, 16384, 65536]


@pytest.mark.experiment("E8")
def test_e8_sealing_scaling(benchmark):
    rng = HmacDrbg(b"bench-e8")
    fuse = rng.random_bytes(32)
    identity = EnclaveIdentity(b"\x01" * 32, b"\x02" * 32, 200, 1)

    table = Table(
        "E8: seal/unseal cost and blob overhead vs. payload size",
        ["payload_B", "blob_B", "overhead_B"],
    )
    overheads = []
    for size in PAYLOAD_SIZES:
        payload = rng.random_bytes(size)
        blob = seal(fuse, identity, payload, rng=rng)
        encoded = blob.to_bytes()
        assert unseal(fuse, identity, blob) == payload
        with pytest.raises(SealingError):
            unseal(rng.random_bytes(32), identity, blob)
        overhead = len(encoded) - size
        overheads.append(overhead)
        table.add_row(size, len(encoded), overhead)
    table.show()
    # Constant envelope: overhead identical across payload sizes.
    assert len(set(overheads)) == 1

    # --- restart vs. re-enrolment ---------------------------------------
    deployment = Deployment(seed=b"e8-restart", vnf_count=1)
    enroll_cost = measure(deployment.clock,
                          lambda: deployment.enroll("vnf-1"))
    sealed = deployment.credential_enclaves["vnf-1"].seal_credentials()
    deployment.host.platform.destroy_enclave(
        deployment.credential_enclaves["vnf-1"].enclave
    )
    fresh = CredentialEnclave(deployment.host, deployment.vendor_key,
                              deployment.network, "vnf-1")
    restore_cost = measure(deployment.clock,
                           lambda: fresh.restore_credentials(sealed))
    comparison = Table(
        "E8: full enrolment vs. sealed restore (simulated time)",
        ["path", "sim_ms"],
    )
    comparison.add_row("full enrolment (steps 1-6)",
                       enroll_cost.simulated_seconds * 1000)
    comparison.add_row("sealed restore after restart",
                       restore_cost.simulated_seconds * 1000)
    comparison.show()
    assert restore_cost.simulated_seconds < enroll_cost.simulated_seconds / 5
    assert fresh.client.summary()["controller"] == "floodlight"

    payload = rng.random_bytes(4096)
    benchmark.pedantic(
        lambda: unseal(fuse, identity, seal(fuse, identity, payload,
                                            rng=rng)),
        rounds=10, iterations=1,
    )
