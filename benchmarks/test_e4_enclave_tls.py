"""E4 — TLS inside vs. outside the enclave (the study the paper defers).

"An investigation of alternative implementations (and their performance
impact) is left for future work" (paper §2).  This experiment runs it under
the SGX transition cost model: the same mutual-auth controller traffic
through (a) the credential enclave and (b) a baseline client holding its
key in process memory.

Expected shape: the enclave pays a per-request overhead (2 transitions +
boundary copies) that is strictly positive at every payload size, but is
*relatively* negligible whenever the network round trip dominates — the
"acceptable overhead" conclusion of Coughlin et al. that the paper cites.
The relative overhead therefore shrinks monotonically as link latency
grows (loopback -> datacenter -> WAN), and the absolute overhead scales
with the modelled ECALL cycle cost (DESIGN.md ablation knob #3).
"""

import json

import pytest

from repro.bench.harness import (
    BenchReport,
    Summary,
    Table,
    measure,
    smoke_mode,
    summarize,
)
from repro.core import Deployment
from repro.crypto.keys import generate_keypair
from repro.sgx.ecall import CostModel

PAYLOAD_SIZES = [256, 1024] if smoke_mode() else [256, 1024, 4096, 16384]
REQUESTS_PER_POINT = 5 if smoke_mode() else 20


def baseline_trusted_client(deployment):
    """A no-enclave client with its own CA-issued credential."""
    key = generate_keypair(deployment.rng)
    cert = deployment.vm.ca.issue(
        subject=deployment.vm.issued_certificate("vnf-1").subject,
        public_key_bytes=key.public.to_bytes(),
        now=deployment.clock.now_seconds(),
    )
    return deployment.baseline_client(mode="trusted-https",
                                      client_chain=[cert], client_key=key)


def request_cost(deployment, send_request, payload: bytes) -> Summary:
    """Distribution of simulated seconds per request of ``len(payload)``
    bytes (min/median/p90/max over ``REQUESTS_PER_POINT`` requests)."""
    send_request(payload)  # warm the connection
    samples = []
    for _ in range(REQUESTS_PER_POINT):
        measurement = measure(deployment.clock,
                              lambda: send_request(payload))
        samples.append(measurement.simulated_seconds)
    return summarize(samples)


@pytest.mark.experiment("E4")
def test_e4_enclave_vs_plain_tls(benchmark):
    deployment = Deployment(seed=b"bench-e4", vnf_count=1)
    deployment.enroll("vnf-1")
    enclave = deployment.credential_enclaves["vnf-1"].enclave
    baseline = baseline_trusted_client(deployment)

    # Both requests hit the flow-pusher path with an oversized body (the
    # 400 response is irrelevant: the bytes still cross TLS both ways).
    def enclave_request(payload: bytes):
        return enclave.ecall("request", "POST", "/wm/staticflowpusher/json",
                             payload)

    def baseline_request(payload: bytes):
        return baseline.request("POST", "/wm/staticflowpusher/json", payload)

    table = Table(
        "E4: per-request simulated time, in-enclave vs. plain TLS "
        "(datacenter link)",
        ["payload_B", "enclave_med_us", "enclave_p90_us", "plain_med_us",
         "plain_p90_us", "overhead_us"],
    )
    report = BenchReport("E4")
    for size in PAYLOAD_SIZES:
        payload = b"\x20" * size
        enclave_cost = request_cost(deployment, enclave_request, payload)
        plain_cost = request_cost(deployment, baseline_request, payload)
        table.add_row(size, enclave_cost.median * 1e6,
                      enclave_cost.p90 * 1e6, plain_cost.median * 1e6,
                      plain_cost.p90 * 1e6,
                      (enclave_cost.median - plain_cost.median) * 1e6)
        report.add(f"request_{size}B", simulated=enclave_cost,
                   payload_bytes=size,
                   plain_median_seconds=plain_cost.median,
                   overhead_seconds=enclave_cost.median - plain_cost.median)
        # Transitions are never free — at the median and in the tail.
        assert enclave_cost.median > plain_cost.median
        assert enclave_cost.p90 > plain_cost.p90
    table.show()

    # --- relative overhead vs. link latency -----------------------------
    from repro.net.simnet import LOOPBACK, DATACENTER, WAN

    latency_table = Table(
        "E4: relative enclave overhead vs. controller link latency",
        ["link", "one_way_latency_us", "enclave_med_us", "plain_med_us",
         "overhead_%"],
    )
    overhead_by_link = []
    for label, profile in (("loopback", LOOPBACK),
                           ("datacenter", DATACENTER), ("wan", WAN)):
        deployment.network.set_link_profile(
            deployment.host.name, "controller", profile
        )
        enclave.ecall("disconnect")
        baseline.close()
        payload = b"\x20" * 1024
        enclave_cost = request_cost(deployment, enclave_request, payload)
        plain_cost = request_cost(deployment, baseline_request, payload)
        overhead = (100 * (enclave_cost.median - plain_cost.median)
                    / plain_cost.median)
        overhead_by_link.append(overhead)
        latency_table.add_row(label, profile.latency * 1e6,
                              enclave_cost.median * 1e6,
                              plain_cost.median * 1e6,
                              overhead)
    latency_table.show()
    # The slower the link, the smaller the relative enclave cost — the
    # paper-area "acceptable overhead" claim, reproduced.
    assert overhead_by_link[0] > overhead_by_link[1] > overhead_by_link[2]
    deployment.network.set_link_profile(deployment.host.name, "controller",
                                        DATACENTER)

    # --- ablation: sensitivity to the modelled ECALL cost --------------
    sweep = Table(
        "E4 ablation: enclave request cost vs. modelled ECALL cycles",
        ["ecall_cycles", "enclave_us_per_request"],
    )
    costs = []
    for cycles in (8000, 80000, 800000):
        ablation = Deployment(
            seed=b"bench-e4-ablation", vnf_count=1,
            cost_model=CostModel(ecall_cycles=cycles, ocall_cycles=cycles),
        )
        ablation.enroll("vnf-1")
        ab_enclave = ablation.credential_enclaves["vnf-1"].enclave

        def ab_request(payload: bytes):
            return ab_enclave.ecall("request", "POST",
                                    "/wm/staticflowpusher/json", payload)

        cost = request_cost(ablation, ab_request, b"\x20" * 1024).median
        costs.append(cost)
        sweep.add_row(cycles, cost * 1e6)
    sweep.show()
    assert costs == sorted(costs)
    assert costs[-1] > costs[0]

    report.add_table(table)
    report.add_table(latency_table)
    report.add_table(sweep)
    report.write()

    # pytest-benchmark wall-time anchor: one enclave request.
    benchmark.pedantic(lambda: enclave_request(b"\x20" * 1024),
                       rounds=10, iterations=1)
