"""E13 — key manager: throughput vs. tenant count and shard count.

The KMS front end serializes only per-request dispatch (routing, auth,
audit) and the REST transport; sealing and unsealing occupy the owning
shard's private enclave timeline (:mod:`repro.kms.store`).  Secrets
spread over the shard set by consistent hashing, so N shards divide the
seal/unseal bill roughly N ways while the front-end bill stays fixed —
the scaling this experiment gates on:

* **shard axis** (fixed tenants): simulated throughput must reach at
  least ``GATE_2X`` of the single-shard baseline at 2 shards and
  ``GATE_4X`` at 4 — near-linear until the serialized front end starts
  to matter;
* **tenant axis** (fixed shards): more tenants on the same shard set
  must not collapse aggregate throughput (quota bookkeeping is O(1));
* **isolation**: in every measured configuration a foreign token is
  denied on the wire — scale never loosens tenancy.

All throughput is *simulated* ops/second measured over the REST surface
(persistent :class:`~repro.kms.api.KmsClient` per tenant on a loopback
link profile) and drained with ``service.quiesce()``, so the numbers are
machine-independent and byte-deterministic per seed.
"""

import pytest

from repro.bench.harness import BenchReport, Table, smoke_mode
from repro.crypto.keys import generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.errors import TenantAuthError
from repro.kms import KeyManagerService, KmsClient, KmsEndpoint
from repro.net.address import Address
from repro.net.clock import VirtualClock
from repro.net.simnet import LOOPBACK, Network
from repro.pki.ca import CertificateAuthority
from repro.pki.name import DistinguishedName

#: Tenant counts for the tenant axis (shards fixed at SHARDS_FOR_TENANTS).
TENANTS = (1, 4) if smoke_mode() else (1, 8, 32)
#: Shard counts for the shard axis (tenants fixed at TENANTS_FOR_SHARDS).
SHARDS = (1, 2, 4) if smoke_mode() else (1, 2, 4, 8)
TENANTS_FOR_SHARDS = max(TENANTS)
SHARDS_FOR_TENANTS = 4
#: Secrets stored (then fetched once) per tenant per run.
SECRETS_PER_TENANT = 8 if smoke_mode() else 32
#: Shard-scaling gates vs. the 1-shard baseline (sim throughput ratio).
#: Smoke mode stores too few keys for consistent hashing to balance
#: well, so it gates leniently (like E12) — full mode holds the real bar.
GATE_2X = 1.2 if smoke_mode() else 1.6
GATE_4X = 1.5 if smoke_mode() else 2.5

ADDRESS = Address("kms.bench", 7100)


def _world(tenant_count, shard_count):
    """A deterministic KMS world: CA, service, endpoint, tenant clients."""
    clock = VirtualClock()
    network = Network(clock, default_profile=LOOPBACK)
    rng = HmacDrbg(b"e13-ca")
    ca = CertificateAuthority(DistinguishedName("E13-CA", "bench"), now=0,
                              rng=rng)
    service = KeyManagerService(ca, clock, seed=b"e13-kms",
                                shard_count=shard_count)
    KmsEndpoint(service, network, ADDRESS)
    clients = []
    tokens = []
    for index in range(tenant_count):
        tenant = f"tenant-{index:02d}"
        service.create_tenant(tenant)
        key = generate_keypair(rng)
        certificate = ca.issue(DistinguishedName(f"vnf-{tenant}", "vnf"),
                               key.public.to_bytes(), now=0)
        token = service.authorize(tenant, certificate)
        tokens.append(token)
        clients.append(KmsClient(network, ADDRESS, tenant, token,
                                 f"client-{index:02d}"))
    return network, service, clients, tokens


def _run(tenant_count, shard_count):
    """One measured configuration → (ops, sim_seconds, throughput)."""
    network, service, clients, tokens = _world(tenant_count, shard_count)
    clock = service.store_backend._clock
    start = clock.now()
    ops = 0
    # Interleave tenants secret-by-secret — the multi-tenant arrival
    # pattern the shard pipeline is meant to absorb.
    for secret_index in range(SECRETS_PER_TENANT):
        for client in clients:
            client.store(f"secret-{secret_index:03d}",
                         f"{client.tenant}:{secret_index}".encode())
            ops += 1
    for client in clients:
        for secret_index in range(SECRETS_PER_TENANT):
            value = client.fetch(f"secret-{secret_index:03d}")
            assert value == f"{client.tenant}:{secret_index}".encode()
            ops += 1
    sim = service.quiesce() - start
    assert sim > 0

    # Isolation at every scale: a foreign token opens nothing over REST.
    if tenant_count > 1:
        intruder = KmsClient(network, ADDRESS, clients[0].tenant,
                             tokens[-1], "intruder")
        with pytest.raises(TenantAuthError):
            intruder.fetch("secret-000")
        intruder.close()
    for client in clients:
        client.close()
    return ops, sim, ops / sim


@pytest.mark.experiment("E13")
def test_e13_kms_throughput():
    report = BenchReport("E13")

    # ----------------------------------------------------- shard axis
    shard_table = Table(
        f"E13: shard scaling (tenants={TENANTS_FOR_SHARDS}, "
        f"{SECRETS_PER_TENANT} secrets/tenant, store+fetch)",
        ["shards", "ops", "sim_ms", "ops_per_sim_s", "speedup"],
    )
    throughput = {}
    for shard_count in SHARDS:
        ops, sim, rate = _run(TENANTS_FOR_SHARDS, shard_count)
        throughput[shard_count] = rate
        speedup = rate / throughput[SHARDS[0]]
        shard_table.add_row(shard_count, ops, sim * 1000, rate, speedup)
        report.add(
            f"shards-{shard_count}", shards=shard_count,
            tenants=TENANTS_FOR_SHARDS, ops=ops,
            sim_seconds=sim, ops_per_sim_second=rate, speedup=speedup,
        )

    # ---------------------------------------------------- tenant axis
    tenant_table = Table(
        f"E13: tenant scaling (shards={SHARDS_FOR_TENANTS}, "
        f"{SECRETS_PER_TENANT} secrets/tenant)",
        ["tenants", "ops", "sim_ms", "ops_per_sim_s"],
    )
    tenant_rates = {}
    for tenant_count in TENANTS:
        ops, sim, rate = _run(tenant_count, SHARDS_FOR_TENANTS)
        tenant_rates[tenant_count] = rate
        tenant_table.add_row(tenant_count, ops, sim * 1000, rate)
        report.add(
            f"tenants-{tenant_count}", tenants=tenant_count,
            shards=SHARDS_FOR_TENANTS, ops=ops,
            sim_seconds=sim, ops_per_sim_second=rate,
        )

    shard_table.show()
    tenant_table.show()
    report.add_table(shard_table)
    report.add_table(tenant_table)
    report.write()

    # Near-linear shard scaling: the seal/unseal bill divides across
    # shards while the front end stays fixed.
    base = throughput[1]
    assert throughput[2] >= GATE_2X * base, (
        f"2 shards: {throughput[2]/base:.2f}x the 1-shard throughput "
        f"(gate: >= {GATE_2X}x)"
    )
    assert throughput[4] >= GATE_4X * base, (
        f"4 shards: {throughput[4]/base:.2f}x the 1-shard throughput "
        f"(gate: >= {GATE_4X}x)"
    )
    # And the trend never inverts: more shards never slows the store.
    rates = [throughput[s] for s in SHARDS]
    assert all(b >= a for a, b in zip(rates, rates[1:])), rates

    # Tenant density: aggregate throughput holds (within 25%) as the
    # same shard set serves more namespaces.
    assert tenant_rates[max(TENANTS)] >= 0.75 * tenant_rates[min(TENANTS)]
