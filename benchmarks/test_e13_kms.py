"""E13 — key manager: throughput vs. tenant count and shard count.

The KMS front end serializes only per-request dispatch (routing, auth,
audit) and the REST transport; sealing and unsealing occupy the owning
shard's private enclave timeline (:mod:`repro.kms.store`).  Secrets
spread over the shard set by consistent hashing, so N shards divide the
seal/unseal bill roughly N ways while the front-end bill stays fixed —
the scaling this experiment gates on:

* **shard axis** (fixed tenants): simulated throughput must reach at
  least ``GATE_2X`` of the single-shard baseline at 2 shards and
  ``GATE_4X`` at 4 — near-linear until the serialized front end starts
  to matter;
* **tenant axis** (fixed shards): more tenants on the same shard set
  must not collapse aggregate throughput (quota bookkeeping is O(1));
* **isolation**: in every measured configuration a foreign token is
  denied on the wire — scale never loosens tenancy.

All throughput is *simulated* ops/second measured over the REST surface
(persistent :class:`~repro.kms.api.KmsClient` per tenant on a loopback
link profile) and drained with ``service.quiesce()``, so the numbers are
machine-independent and byte-deterministic per seed.
"""

import time

import pytest

from repro.bench.harness import BenchReport, Table, smoke_mode
from repro.crypto.keys import generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.errors import TenantAuthError
from repro.kms import KeyManagerService, KmsClient, KmsEndpoint
from repro.net.address import Address
from repro.net.clock import VirtualClock
from repro.net.simnet import LOOPBACK, Network
from repro.pki.ca import CertificateAuthority
from repro.pki.name import DistinguishedName

#: Tenant counts for the tenant axis (shards fixed at SHARDS_FOR_TENANTS).
TENANTS = (1, 4) if smoke_mode() else (1, 8, 32)
#: Shard counts for the shard axis (tenants fixed at TENANTS_FOR_SHARDS).
SHARDS = (1, 2, 4) if smoke_mode() else (1, 2, 4, 8)
TENANTS_FOR_SHARDS = max(TENANTS)
SHARDS_FOR_TENANTS = 4
#: Secrets stored (then fetched once) per tenant per run.
SECRETS_PER_TENANT = 8 if smoke_mode() else 32
#: Shard-scaling gates vs. the 1-shard baseline (sim throughput ratio).
#: Smoke mode stores too few keys for consistent hashing to balance
#: well, so it gates leniently (like E12) — full mode holds the real bar.
GATE_2X = 1.2 if smoke_mode() else 1.6
GATE_4X = 1.5 if smoke_mode() else 2.5

#: Kernel-pool width for the seal wall-clock axis.
SEAL_WORKERS = 2

ADDRESS = Address("kms.bench", 7100)

#: Both E13 tests feed one report — ``BenchReport.write()`` replaces the
#: whole ``BENCH_E13.json``, so per-test writes would drop the other
#: test's rows.  The autouse module fixture flushes once at teardown.
_REPORT = BenchReport("E13")


@pytest.fixture(scope="module", autouse=True)
def _flush_report():
    yield
    _REPORT.write()


def _world(tenant_count, shard_count, seal_workers=0):
    """A deterministic KMS world: CA, service, endpoint, tenant clients."""
    clock = VirtualClock()
    network = Network(clock, default_profile=LOOPBACK)
    rng = HmacDrbg(b"e13-ca")
    ca = CertificateAuthority(DistinguishedName("E13-CA", "bench"), now=0,
                              rng=rng)
    service = KeyManagerService(ca, clock, seed=b"e13-kms",
                                shard_count=shard_count,
                                seal_workers=seal_workers)
    KmsEndpoint(service, network, ADDRESS)
    clients = []
    tokens = []
    for index in range(tenant_count):
        tenant = f"tenant-{index:02d}"
        service.create_tenant(tenant)
        key = generate_keypair(rng)
        certificate = ca.issue(DistinguishedName(f"vnf-{tenant}", "vnf"),
                               key.public.to_bytes(), now=0)
        token = service.authorize(tenant, certificate)
        tokens.append(token)
        clients.append(KmsClient(network, ADDRESS, tenant, token,
                                 f"client-{index:02d}"))
    return network, service, clients, tokens


def _run(tenant_count, shard_count):
    """One measured configuration → (ops, sim_seconds, throughput)."""
    network, service, clients, tokens = _world(tenant_count, shard_count)
    clock = service.store_backend._clock
    start = clock.now()
    ops = 0
    # Interleave tenants secret-by-secret — the multi-tenant arrival
    # pattern the shard pipeline is meant to absorb.
    for secret_index in range(SECRETS_PER_TENANT):
        for client in clients:
            client.store(f"secret-{secret_index:03d}",
                         f"{client.tenant}:{secret_index}".encode())
            ops += 1
    for client in clients:
        for secret_index in range(SECRETS_PER_TENANT):
            value = client.fetch(f"secret-{secret_index:03d}")
            assert value == f"{client.tenant}:{secret_index}".encode()
            ops += 1
    sim = service.quiesce() - start
    assert sim > 0

    # Isolation at every scale: a foreign token opens nothing over REST.
    if tenant_count > 1:
        intruder = KmsClient(network, ADDRESS, clients[0].tenant,
                             tokens[-1], "intruder")
        with pytest.raises(TenantAuthError):
            intruder.fetch("secret-000")
        intruder.close()
    for client in clients:
        client.close()
    return ops, sim, ops / sim


@pytest.mark.experiment("E13")
def test_e13_kms_throughput():
    report = _REPORT

    # ----------------------------------------------------- shard axis
    shard_table = Table(
        f"E13: shard scaling (tenants={TENANTS_FOR_SHARDS}, "
        f"{SECRETS_PER_TENANT} secrets/tenant, store+fetch)",
        ["shards", "ops", "sim_ms", "ops_per_sim_s", "speedup"],
    )
    throughput = {}
    for shard_count in SHARDS:
        ops, sim, rate = _run(TENANTS_FOR_SHARDS, shard_count)
        throughput[shard_count] = rate
        speedup = rate / throughput[SHARDS[0]]
        shard_table.add_row(shard_count, ops, sim * 1000, rate, speedup)
        report.add(
            f"shards-{shard_count}", shards=shard_count,
            tenants=TENANTS_FOR_SHARDS, ops=ops,
            sim_seconds=sim, ops_per_sim_second=rate, speedup=speedup,
        )

    # ---------------------------------------------------- tenant axis
    tenant_table = Table(
        f"E13: tenant scaling (shards={SHARDS_FOR_TENANTS}, "
        f"{SECRETS_PER_TENANT} secrets/tenant)",
        ["tenants", "ops", "sim_ms", "ops_per_sim_s"],
    )
    tenant_rates = {}
    for tenant_count in TENANTS:
        ops, sim, rate = _run(tenant_count, SHARDS_FOR_TENANTS)
        tenant_rates[tenant_count] = rate
        tenant_table.add_row(tenant_count, ops, sim * 1000, rate)
        report.add(
            f"tenants-{tenant_count}", tenants=tenant_count,
            shards=SHARDS_FOR_TENANTS, ops=ops,
            sim_seconds=sim, ops_per_sim_second=rate,
        )

    shard_table.show()
    tenant_table.show()
    report.add_table(shard_table)
    report.add_table(tenant_table)

    # Near-linear shard scaling: the seal/unseal bill divides across
    # shards while the front end stays fixed.
    base = throughput[1]
    assert throughput[2] >= GATE_2X * base, (
        f"2 shards: {throughput[2]/base:.2f}x the 1-shard throughput "
        f"(gate: >= {GATE_2X}x)"
    )
    assert throughput[4] >= GATE_4X * base, (
        f"4 shards: {throughput[4]/base:.2f}x the 1-shard throughput "
        f"(gate: >= {GATE_4X}x)"
    )
    # And the trend never inverts: more shards never slows the store.
    rates = [throughput[s] for s in SHARDS]
    assert all(b >= a for a, b in zip(rates, rates[1:])), rates

    # Tenant density: aggregate throughput holds (within 25%) as the
    # same shard set serves more namespaces.
    assert tenant_rates[max(TENANTS)] >= 0.75 * tenant_rates[min(TENANTS)]


def _sealed_blobs(service, tenant_count):
    """Every stored blob's bytes, keyed by storage key — the artefacts
    the kernel offload must not perturb."""
    backend = service.store_backend
    blobs = {}
    for index in range(tenant_count):
        tenant = f"tenant-{index:02d}"
        for secret_index in range(SECRETS_PER_TENANT):
            name = f"secret-{secret_index:03d}"
            key = backend.storage_key(tenant, name)
            blobs[key] = backend.shard_for(tenant, name).sealed_blob(key)
    return blobs


@pytest.mark.experiment("E13")
def test_e13_seal_wall_clock():
    """Wall-clock seal axis: the store loop with the sealing AEAD inline
    vs. dispatched to ``SEAL_WORKERS`` kernel processes.  Simulated time
    is identical by construction (the shard timeline charges the same
    enclave bill either way); what this axis records is the *host* CPU
    cost moving off the request thread — and that the sealed bytes do
    not change."""
    tenant_count, shard_count = 2, 2
    table = Table(
        f"E13: seal wall clock, inline vs. {SEAL_WORKERS} kernel "
        f"processes ({tenant_count} tenants x {SECRETS_PER_TENANT} "
        f"secrets, store only)",
        ["seal_workers", "ops", "wall_ms", "dispatched", "inline"],
    )

    blobs = {}
    for seal_workers in (0, SEAL_WORKERS):
        network, service, clients, _ = _world(tenant_count, shard_count,
                                              seal_workers=seal_workers)
        start = time.perf_counter()
        ops = 0
        for secret_index in range(SECRETS_PER_TENANT):
            for client in clients:
                client.store(f"secret-{secret_index:03d}",
                             f"{client.tenant}:{secret_index}".encode())
                ops += 1
        service.quiesce()
        wall = time.perf_counter() - start

        pool = service.kernel_pool
        dispatched = pool.dispatched if pool is not None else 0
        inline = pool.inline_calls if pool is not None else ops
        if seal_workers:
            # The offload actually happened (inline calls only appear if
            # the pool degraded, which would still be byte-identical).
            assert dispatched + inline >= ops
            assert dispatched > 0
        blobs[seal_workers] = _sealed_blobs(service, tenant_count)

        table.add_row(seal_workers, ops, wall * 1000, dispatched, inline)
        _REPORT.add(
            f"seal-workers-{seal_workers}", seal_workers=seal_workers,
            tenants=tenant_count, shards=shard_count, ops=ops,
            seal_wall_seconds=wall, kernel_dispatches=dispatched,
            kernel_inline_calls=inline,
        )
        for client in clients:
            client.close()
        service.shutdown_seal_workers()

    table.show()
    _REPORT.add_table(table)

    # Byte-identity: key_id/nonce are drawn under the shard lock in DRBG
    # order, so worker sealing reproduces the inline blobs exactly.
    assert blobs[SEAL_WORKERS] == blobs[0]
