"""E1 — Figure 1: end-to-end enrolment, broken down per workflow step.

The paper's Figure 1 is an architecture/workflow diagram; this experiment
executes it and reports where the time goes.  Expected shape: VNF
attestation + provisioning (steps 3-5) is the heaviest phase (two network
round trips to IAS plus ECDH + certificate issuance), host attestation
(steps 1-2) scales with the IML, and the first controller session (step 6)
costs one mutual-auth TLS handshake.
"""

import pytest

from repro.bench.harness import BenchReport, Table, summarize
from repro.core import Deployment


@pytest.mark.experiment("E1")
def test_e1_workflow_breakdown(benchmark):
    def run_workflow():
        deployment = Deployment(seed=b"bench-e1", vnf_count=2)
        return deployment, deployment.run_workflow()

    deployment, trace = benchmark.pedantic(run_workflow, rounds=3,
                                           iterations=1)

    table = Table(
        "E1: Figure 1 workflow, per-step simulated time (2 VNFs)",
        ["step", "sim_ms_total", "share_%"],
    )
    totals = trace.step_totals()
    grand_total = sum(totals.values())
    for step, seconds in totals.items():
        table.add_row(step, seconds * 1000, 100 * seconds / grand_total)
    table.add_row("TOTAL", grand_total * 1000, 100.0)
    table.show()

    # Per-step distribution across VNFs (min/median/p90/max).
    spread = Table(
        "E1: per-step simulated time across VNFs",
        ["step", "min_ms", "median_ms", "p90_ms", "max_ms"],
    )
    per_step_samples = {}
    for timings in trace.per_vnf.values():
        for timing in timings:
            per_step_samples.setdefault(timing.step, []).append(
                timing.simulated_seconds
            )
    report = BenchReport("E1")
    for step, samples in per_step_samples.items():
        summary = summarize(samples)
        spread.add_row(step, *summary.row(scale=1e3))
        report.add(step, simulated=summary,
                   total_seconds=totals.get(step, 0.0))
    spread.show()
    report.add_table(table)
    report.add_table(spread)
    report.write()

    print(f"\nclock charges: "
          f"{ {k: round(v * 1000, 3) for k, v in trace.clock_charges.items()} }")

    # Shape assertions.
    assert set(trace.per_vnf) == {"vnf-1", "vnf-2"}
    steps = list(totals)
    assert len(steps) == 3
    # Steps 3-5 dominate steps 6 (provisioning involves IAS + crypto; the
    # controller session is one handshake).
    provisioning = next(v for k, v in totals.items() if "steps 3-5" in k)
    session = next(v for k, v in totals.items() if "step 6" in k)
    assert provisioning > session
    # Audit trail complete for both VNFs.
    counts = deployment.vm.audit.counts()
    assert counts["credential-provisioned"] == 2
