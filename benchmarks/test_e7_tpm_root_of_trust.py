"""E7 — the paper's §4 future work: TPM-rooted vs. plain-IMA measurement
logs under a root-level log-rewriting adversary.

Expected shape: plain IMA detects 0% of consistent log rewrites (the gap
the paper names); the TPM-rooted configuration detects 100%.  Honest
tampering (file modified, log intact) is detected in both configurations.
"""

import pytest

from repro.bench.harness import Table
from repro.containers.host import DEFAULT_OS_FILES
from repro.core import Deployment

TRIALS = 8
TARGETS = sorted(DEFAULT_OS_FILES)


def run_trials(with_tpm: bool, stealthy: bool) -> int:
    """Run TRIALS attacks; return how many were detected."""
    detected = 0
    for trial in range(TRIALS):
        deployment = Deployment(
            seed=f"e7-{with_tpm}-{stealthy}-{trial}".encode(),
            vnf_count=1, with_tpm=with_tpm,
        )
        target = TARGETS[trial % len(TARGETS)]
        deployment.host.tamper_file(target, b"rootkit-" + bytes([trial]))
        if stealthy:
            deployment.host.hide_measurement(target)
        result = deployment.vm.attest_host(deployment.agent_client,
                                           deployment.host.name)
        if not result.trustworthy:
            detected += 1
    return detected


@pytest.mark.experiment("E7")
def test_e7_tpm_detection_rates(benchmark):
    table = Table(
        "E7: tamper-detection rate by configuration (root adversary)",
        ["configuration", "attack", "detected", "trials", "rate_%"],
    )

    honest_ima = run_trials(with_tpm=False, stealthy=False)
    table.add_row("plain IMA", "tamper only", honest_ima, TRIALS,
                  100 * honest_ima / TRIALS)

    stealthy_ima = run_trials(with_tpm=False, stealthy=True)
    table.add_row("plain IMA", "tamper + log rewrite", stealthy_ima, TRIALS,
                  100 * stealthy_ima / TRIALS)

    honest_tpm = run_trials(with_tpm=True, stealthy=False)
    table.add_row("TPM-rooted", "tamper only", honest_tpm, TRIALS,
                  100 * honest_tpm / TRIALS)

    stealthy_tpm = run_trials(with_tpm=True, stealthy=True)
    table.add_row("TPM-rooted", "tamper + log rewrite", stealthy_tpm, TRIALS,
                  100 * stealthy_tpm / TRIALS)
    table.show()

    # The paper's gap, reproduced exactly:
    assert honest_ima == TRIALS        # visible tampering always caught
    assert stealthy_ima == 0           # log rewrite evades plain IMA
    assert honest_tpm == TRIALS
    assert stealthy_tpm == TRIALS      # the TPM closes the gap

    # Wall-time anchor: one TPM-rooted attestation.
    deployment = Deployment(seed=b"e7-bench", vnf_count=1, with_tpm=True)
    benchmark.pedantic(
        lambda: deployment.vm.attest_host(deployment.agent_client,
                                          deployment.host.name),
        rounds=5, iterations=1,
    )
