"""E14 — RA-TLS attested channels vs. the out-of-band enrollment protocol.

The paper's Figure 1 enrolls a VNF out-of-band: host attestation
(steps 1-2), enclave attestation and credential provisioning through the
Verification Manager (steps 3-5), then the controller connection
(step 6).  RA-TLS (:mod:`repro.tls.ratls`) collapses steps 3-6 into the
controller handshake itself: the enclave self-signs a quote-bearing
certificate locally and the controller-side verifier attests it while
validating the client flight.

Two gates, extending E10 and E12:

* **O(1) IAS across reconnects** (extends E10): a reconnecting VNF
  resumes its *attested* session — the memoised AVR verdict plus the
  TLS session ticket mean zero further IAS traffic however often the
  VNF bounces.

* **≥5× cut in enrollment round trips at fleet scale** (extends E12):
  "enrollment machinery" is every message that is *not* on the
  controller session both paths establish identically — agent REST
  exchanges, Verification Manager traffic and IAS round trips,
  separated exactly by :meth:`repro.net.simnet.Network.messages_to`.
  The standard path pays ~20 machinery messages per VNF (host
  re-attestation, four agent exchanges, two fresh-connection IAS
  verifications); RA-TLS pays only the verifier's pipelined IAS
  exchange (~2 per VNF over the pooled connection).
"""

import pytest

from repro.bench.harness import BenchReport, Table, smoke_mode
from repro.core import Deployment
from repro.core.workflow import CONTROLLER_HOST

#: Fleet shape for the round-trip gate.
FLEET = 4 if smoke_mode() else 16
HOSTS = 2 if smoke_mode() else 4
#: Reconnect count for the O(1)-IAS gate.
RECONNECTS = 8 if smoke_mode() else 32
#: Machinery round trips must drop by at least this factor at fleet
#: scale (the ISSUE gate); smoke mode keeps the same bar — the ratio is
#: a protocol property, not a wall-clock one, so load cannot erode it.
MACHINERY_GATE = 5.0


def _machinery(dep) -> int:
    """Messages spent on enrollment machinery so far: everything not on
    the controller session (agents, Verification Manager, IAS)."""
    return dep.network.messages_sent - dep.network.messages_to(
        CONTROLLER_HOST
    )


@pytest.mark.experiment("E14")
def test_e14_ratls_attested_channels():
    report = BenchReport("E14")

    # ------------------------------------------------- gate 1: O(1) IAS
    dep = Deployment(seed=b"bench-e14-reconnect", vnf_count=1)
    verifier = dep.build_ratls()
    dep.enroll_ratls("vnf-1")
    enclave = dep.credential_enclaves["vnf-1"].enclave

    assert dep.ias.quotes_verified == 1
    assert verifier.validations == 1

    ias_before = dep.ias.quotes_verified
    reconnect_msgs = []
    for _ in range(RECONNECTS):
        enclave.ecall("disconnect")
        before = dep.network.messages_sent
        enclave.ecall("request", "GET",
                      "/wm/core/controller/summary/json", b"")
        reconnect_msgs.append(dep.network.messages_sent - before)

    # O(1): not a single further IAS call, not a single further quote
    # validation — the ticket plus the memoised verdict carry the trust.
    assert dep.ias.quotes_verified == ias_before
    assert verifier.validations == 1
    assert verifier.resumption_checks == RECONNECTS
    assert verifier.resumptions_denied == 0
    # Reconnects are flat: every one costs the same handful of messages.
    assert len(set(reconnect_msgs)) == 1

    recon_table = Table(
        f"E14: {RECONNECTS} reconnects of an RA-TLS-enrolled VNF",
        ["reconnects", "ias_calls", "quote_validations",
         "msgs_per_reconnect"],
    )
    recon_table.add_row(RECONNECTS, dep.ias.quotes_verified - ias_before,
                        verifier.validations - 1, reconnect_msgs[0])
    recon_table.show()
    report.add_table(recon_table)
    report.add(
        "reconnects", reconnects=RECONNECTS,
        ias_calls=dep.ias.quotes_verified - ias_before,
        messages_per_reconnect=reconnect_msgs[0],
    )

    # --------------------------------------- gate 2: machinery at scale
    # Standard path: the Figure 1 protocol, one VNF at a time (the same
    # reference loop experiments E10-E12 compare against).
    std = Deployment(seed=b"bench-e14-std", vnf_count=FLEET,
                     host_count=HOSTS)
    std_machinery0 = _machinery(std)
    std_total0 = std.network.messages_sent
    for name in std.vnf_names:
        std.enroll(name)
    std_machinery = _machinery(std) - std_machinery0
    std_total = std.network.messages_sent - std_total0

    # RA-TLS path: local credential preparation, attestation inside the
    # handshake, IAS pipelined over the verifier's pooled connection.
    rat = Deployment(seed=b"bench-e14-ratls", vnf_count=FLEET,
                     host_count=HOSTS)
    rat.build_ratls()
    rat_machinery0 = _machinery(rat)
    rat_total0 = rat.network.messages_sent
    for name in rat.vnf_names:
        rat.enroll_ratls(name)
    rat_machinery = _machinery(rat) - rat_machinery0
    rat_total = rat.network.messages_sent - rat_total0

    assert rat.ias.quotes_verified == FLEET      # one verify per VNF...
    assert rat.ratls_ias_pool.connects == 1      # ...over one connection
    assert rat.ratls_ias_pool.reused_exchanges == FLEET - 1

    ratio = std_machinery / rat_machinery
    total_ratio = std_total / rat_total
    fleet_table = Table(
        f"E14: enrollment round trips, {FLEET} VNFs on {HOSTS} hosts",
        ["path", "machinery_msgs", "per_vnf", "total_msgs",
         "total_per_vnf"],
    )
    fleet_table.add_row("standard (steps 1-6)", std_machinery,
                        std_machinery / FLEET, std_total,
                        std_total / FLEET)
    fleet_table.add_row("ra-tls", rat_machinery, rat_machinery / FLEET,
                        rat_total, rat_total / FLEET)
    fleet_table.add_row("ratio", f"{ratio:.2f}x", "", f"{total_ratio:.2f}x",
                        "")
    fleet_table.show()
    report.add_table(fleet_table)
    report.add(
        "fleet", vnfs=FLEET, hosts=HOSTS,
        standard_machinery_messages=std_machinery,
        ratls_machinery_messages=rat_machinery,
        machinery_ratio=ratio,
        standard_total_messages=std_total,
        ratls_total_messages=rat_total,
        total_ratio=total_ratio,
    )
    report.write()

    assert ratio >= MACHINERY_GATE, (
        f"enrollment machinery round trips fell only {ratio:.2f}x "
        f"(gate {MACHINERY_GATE}x): std={std_machinery} "
        f"ratls={rat_machinery} for {FLEET} VNFs"
    )
