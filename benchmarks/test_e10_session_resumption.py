"""E10 — ablation: TLS session resumption on the northbound link.

VNFs reconnect to the controller constantly (reschedules, timeouts).  The
abbreviated handshake skips certificate exchange and the ECDHE key
exchange, so reconnection should cost roughly one round trip instead of
two plus the certificate flight.  This also justifies the revocation
design: because resumption skips validation, the Verification Manager
evicts cached sessions on CRL pushes (tested in the core suite).
"""

import pytest

from repro.bench.harness import Table, measure
from repro.core import Deployment

RECONNECTS = 10


@pytest.mark.experiment("E10")
def test_e10_resumption_ablation(benchmark):
    deployment = Deployment(seed=b"bench-e10", vnf_count=1)
    deployment.enroll("vnf-1")
    enclave = deployment.credential_enclaves["vnf-1"].enclave

    def probe() -> None:
        enclave.ecall("request", "GET",
                      "/wm/core/controller/summary/json", b"")

    # First connection of the enclave's TLS client was the full handshake
    # made during enrolment; measure resumed reconnects (the close_notify
    # of the old session stays outside the measured region).
    resumed_costs = []
    for _ in range(RECONNECTS):
        enclave.ecall("disconnect")
        resumed_costs.append(
            measure(deployment.clock, probe).simulated_seconds
        )
    resumed = sum(resumed_costs) / len(resumed_costs)

    # Full-handshake baseline: fresh deployments (fresh session caches).
    full_costs = []
    for trial in range(3):
        fresh = Deployment(seed=f"bench-e10-full-{trial}".encode(),
                           vnf_count=1)
        fresh.vm.attest_host(fresh.agent_client, fresh.host.name)
        fresh.vm.enroll_vnf(fresh.agent_client, fresh.host.name, "vnf-1",
                            str(fresh.controller_address()))
        fresh_enclave = fresh.credential_enclaves["vnf-1"].enclave
        cost = measure(
            fresh.clock,
            lambda: fresh_enclave.ecall(
                "request", "GET", "/wm/core/controller/summary/json", b""
            ),
        ).simulated_seconds
        full_costs.append(cost)
    full = sum(full_costs) / len(full_costs)

    table = Table(
        "E10: first controller exchange, full vs. resumed handshake",
        ["handshake", "sim_ms (connect + request)"],
    )
    table.add_row("full (ECDHE + certificates)", full * 1000)
    table.add_row("abbreviated (resumed)", resumed * 1000)
    table.show()

    # Resumption saves at least one round trip's worth of time.
    assert resumed < full
    assert full - resumed > 0.0005  # >= one datacenter one-way latency

    def reconnect_and_probe() -> None:
        enclave.ecall("disconnect")
        probe()

    benchmark.pedantic(reconnect_and_probe, rounds=10, iterations=1)
