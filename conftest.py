"""Repository-root pytest configuration.

Registers the race-sanitizer plugin (inert unless ``REPRO_SANITIZE=1``
is set — see ``docs/ANALYSIS.md`` and the ``race-sanitizer`` CI job).
"""

pytest_plugins = ["repro.analysis.sanitizer_plugin"]
